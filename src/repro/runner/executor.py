"""The parallel sharded study runner and the suite scheduler.

:class:`StudyRunner` turns one
:class:`~repro.workloads.generator.TraceGeneratorConfig` into a merged
:class:`~repro.workloads.trace.TraceDataset` using a pool of worker
processes, in two embarrassingly parallel stages:

1. **Synthesis** — the submission plan is dealt round-robin across shards
   and each worker synthesises its shard's jobs.  Job randomness is keyed by
   global job index, so the synthesised jobs are identical for any shard or
   worker count.
2. **Simulation** — machines are packed into balanced groups and each worker
   drives its own :class:`~repro.cloud.service.QuantumCloudService` over its
   sub-fleet.  The service draws from per-machine spawned streams, so the
   merged per-machine dynamics equal the single-service run exactly.

:func:`run_suite` generalises the same pipeline to *many* studies on one
:class:`~repro.runner.pool.SharedWorkerPool`.  Scheduling is event-driven:
every study's synthesis shards are queued up front, and a completion
callback on each shard queues the study's machine-group simulations the
moment its *last* synthesis shard lands — no study waits behind another
study's synthesis in list order, and the pool is never idle behind a
phase barrier.  Per-study worker state is keyed by config fingerprint (see
:mod:`repro.runner.pool`), which keeps each study a pure function of its
config: same seed in, byte-identical trace out, no matter how the work was
partitioned, which studies ran alongside, or in what order shards landed.

Progress is observable two ways: the legacy ``progress`` string callback,
and ``on_event``, a structured :class:`SuiteEvent` stream (shards completed
/ total, wall-clock ETA, per-study completions) that the CLI's
``--progress`` flag prints and the study-service gateway forwards to its
NDJSON job streams.  Events may fire on the pool's result-handler thread;
handlers must be quick, thread-safe and must never raise.

Simulation workers return their rows already columnar
(:class:`~repro.workloads.trace.ShardColumns`), and the merge is pure
array work — vocabulary union, code remap and one stable lexsort by
``(submit_time, job_id)`` — so shard results never round-trip through
row objects.  Results are memoised on disk through
:class:`~repro.runner.cache.TraceCache`; under an active memory budget the
merged dataset is chunked into governed column blocks (see
:mod:`repro.workloads.blocks`) that spill past the budget.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cloud.job import Job
from repro.core.exceptions import WorkloadError
from repro.runner.cache import TraceCache, config_fingerprint
from repro.runner.pool import SharedWorkerPool, default_workers
from repro.runner.sharding import (
    MachineGroup,
    ShardSpec,
    TranspileShard,
    plan_machine_groups,
    plan_shards,
    plan_transpile_shards,
)
from repro.telemetry import get_registry, get_tracer
from repro.transpiler.cache import (
    DEFAULT_RANK_SEED,
    TranspileCache,
    TranspileSummary,
    backend_fingerprint,
    transpile_cache_key,
)
from repro.workloads.circuit_metrics import class_fingerprint
from repro.workloads.generator import (
    TraceGeneratorConfig,
    plan_submissions,
    plan_transpile_classes,
)
from repro.workloads.transpile_classes import ClassRankTable, TranspilePair
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    TraceDataset,
    merge_shard_columns,
)

ProgressCallback = Callable[[str], None]

__all__ = [
    "EventCallback",
    "ProgressCallback",
    "StudyResult",
    "StudyRunner",
    "SuiteCancelled",
    "SuiteEvent",
    "default_workers",
    "run_study",
    "run_suite",
]


class SuiteCancelled(WorkloadError):
    """Raised by :func:`run_suite` when its ``should_stop`` hook fires."""


@dataclass(frozen=True)
class SuiteEvent:
    """One structured progress event of a :func:`run_suite` call.

    ``completed`` / ``total`` count pool tasks (synthesis shards plus
    simulation groups) across the whole suite; ``total`` grows as each
    study's simulation groups are planned, so early ETAs are lower bounds.
    ``key`` is the study fingerprint the event belongs to (None for
    suite-wide events).
    """

    kind: str                      # queued | cache-hit | shard-done |
    #                              # transpile-queued | rank-table |
    #                              # sims-queued | study-done | suite-done
    key: Optional[str] = None
    phase: Optional[str] = None    # transpile | synthesis | simulation
    completed: int = 0
    total: int = 0
    elapsed_seconds: float = 0.0
    eta_seconds: Optional[float] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "completed": self.completed,
            "total": self.total,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }
        if self.key is not None:
            payload["study"] = self.key
        if self.phase is not None:
            payload["phase"] = self.phase
        if self.eta_seconds is not None:
            payload["eta_seconds"] = round(self.eta_seconds, 3)
        if self.detail:
            payload.update(self.detail)
        return payload


EventCallback = Callable[[SuiteEvent], None]


class _SuiteTracker:
    """Thread-safe shard accounting + event emission for one suite run."""

    def __init__(self, on_event: Optional[EventCallback]):
        self._on_event = on_event
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.completed = 0
        self.total = 0
        self.closed = False

    def add_tasks(self, count: int) -> None:
        with self._lock:
            self.total += count

    def close(self) -> None:
        """Silence late events (tasks abandoned after cancel/failure)."""
        with self._lock:
            self.closed = True

    def emit(self, kind: str, key: Optional[str] = None,
             phase: Optional[str] = None, task_done: bool = False,
             **detail: object) -> None:
        with self._lock:
            if self.closed:
                return
            if task_done:
                self.completed += 1
            completed, total = self.completed, self.total
        if self._on_event is None:
            return
        elapsed = time.perf_counter() - self._started
        eta = None
        if 0 < completed <= total:
            eta = elapsed / completed * (total - completed)
        event = SuiteEvent(
            kind=kind, key=key, phase=phase, completed=completed,
            total=total, elapsed_seconds=elapsed, eta_seconds=eta,
            detail=dict(detail))
        try:
            self._on_event(event)
        except Exception:
            # Event handlers run on the pool's result-handler thread;
            # a raising handler must never take the scheduler down.
            pass


@dataclass
class StudyResult:
    """The handle every study execution returns: a dataset reference, its
    content fingerprint, and how it was produced.

    :func:`run_study`, :class:`StudyRunner.run` and each scenario of
    :func:`~repro.scenarios.engine.run_scenarios` all surface this one
    shape — consumers hold the handle (``dataset`` / ``fingerprint`` /
    ``metadata``) instead of bare datasets and loose keys.
    """

    trace: TraceDataset
    config: TraceGeneratorConfig
    workers: int
    num_shards: int
    cache_key: str
    cache_hit: bool = False
    cache_path: Optional[Path] = None
    timings: Dict[str, float] = field(default_factory=dict)
    shard_sizes: List[int] = field(default_factory=list)
    group_sizes: List[int] = field(default_factory=list)
    engine: str = "batched"
    #: rank-mode amortisation accounting — ``probes`` (per-job rankings a
    #: naive implementation would each transpile for), ``pairs`` (classes
    #: actually transpiled), ``warm``/``cold`` (served from the transpile
    #: cache vs computed this run).  Empty for trace-level-policy studies.
    transpile: Dict[str, int] = field(default_factory=dict)

    @property
    def dataset(self) -> TraceDataset:
        """The study's trace (alias of ``trace``, the handle spelling)."""
        return self.trace

    @property
    def fingerprint(self) -> str:
        """The study's config fingerprint — also its trace-cache key."""
        return self.cache_key

    @property
    def metadata(self) -> Dict[str, object]:
        """Provenance: the trace's metadata plus how this run produced it."""
        payload = {
            **dict(self.trace.metadata),
            "fingerprint": self.fingerprint,
            "workers": self.workers,
            "shards": self.num_shards,
            "cache_hit": self.cache_hit,
            "engine": self.engine,
            "phase_seconds": {name: round(value, 6)
                              for name, value in sorted(self.timings.items())},
        }
        if self.transpile:
            payload["transpile"] = dict(self.transpile)
        return payload

    @property
    def total_seconds(self) -> float:
        return self.timings.get("total", 0.0)

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self.trace),
            "fingerprint": self.fingerprint,
            "workers": self.workers,
            "shards": self.num_shards,
            "cache_hit": self.cache_hit,
            **{f"{name}_seconds": round(value, 3)
               for name, value in sorted(self.timings.items())},
        }


@dataclass
class _PendingStudy:
    """Book-keeping of one cache-missed study flowing through the pool."""

    key: str
    config: TraceGeneratorConfig
    shards: List[ShardSpec]
    started: float
    plan_seconds: float
    engine: str = "batched"
    #: True when the study's scenario selects machines by batch ranking —
    #: these studies run the extra transpile phase before synthesis
    rank_mode: bool = False
    num_submissions: int = 0
    synth_handles: List[object] = field(default_factory=list)
    sim_handles: List[object] = field(default_factory=list)
    groups: List[MachineGroup] = field(default_factory=list)
    synthesis_seconds: float = 0.0
    simulation_seconds: float = 0.0
    #: the class summaries shipped to every synthesis shard (rank mode)
    rank_table: Optional[ClassRankTable] = None
    transpile_shards: List[TranspileShard] = field(default_factory=list)
    transpile_handles: List[object] = field(default_factory=list)
    #: summaries served from the on-disk transpile cache during planning
    transpile_warm: List[TranspileSummary] = field(default_factory=list)
    #: per-shard computed summaries, filled by completion callbacks in
    #: shard order (the order that makes the merged table deterministic)
    transpile_shard_summaries: List[Optional[List[TranspileSummary]]] = \
        field(default_factory=list)
    #: transpile shards still outstanding; the callback that takes it to
    #: zero builds the rank table and queues the study's synthesis
    transpile_remaining: int = 0
    transpile_seconds: float = 0.0
    transpile_stats: Dict[str, int] = field(default_factory=dict)
    #: per-shard synthesis results, filled by completion callbacks in shard
    #: order (the order that makes the merged job list deterministic)
    shard_jobs: List[Optional[List[Job]]] = field(default_factory=list)
    #: shards still outstanding; the callback that takes it to zero queues
    #: the study's simulations
    shards_remaining: int = 0
    #: an exception raised inside a completion callback (re-raised by the
    #: collection loop — callbacks themselves must never raise)
    callback_error: Optional[BaseException] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


def _probe_transpile_cache(
        pairs: Sequence[TranspilePair],
        fleet: Dict[str, object],
        config: TraceGeneratorConfig,
        transpile_cache: Optional[TranspileCache],
) -> Tuple[List[TranspileSummary], List[TranspilePair]]:
    """Split a rank study's pairs into (warm summaries, cold pairs).

    Probing happens in the parent so cold work — not the whole pair list —
    is what gets sharded across the pool; the cache's own hit/miss
    counters account the probes.
    """
    if transpile_cache is None:
        return [], list(pairs)
    level = config.scenario.ranking_level
    machine_fps: Dict[str, str] = {}
    warm: List[TranspileSummary] = []
    cold: List[TranspilePair] = []
    for family, width, machine in pairs:
        machine_fp = machine_fps.get(machine)
        if machine_fp is None:
            machine_fp = backend_fingerprint(fleet[machine])
            machine_fps[machine] = machine_fp
        key = transpile_cache_key(class_fingerprint(family, width),
                                  machine_fp, level, DEFAULT_RANK_SEED)
        summary = transpile_cache.get(key)
        if summary is None:
            cold.append((family, width, machine))
        else:
            warm.append(summary)
    return warm, cold


def _queue_synthesis(pool: SharedWorkerPool, epoch: int,
                     study: _PendingStudy, tracker: _SuiteTracker) -> None:
    """Queue a study's synthesis shards (directly, or as the rank-mode
    transpile phase's completion step — whichever thread that lands on)."""
    tracker.add_tasks(len(study.shards))
    tracker.emit("queued", key=study.key, shards=len(study.shards),
                 submissions=study.num_submissions)
    study.synth_handles = [
        pool.submit_synthesis(
            epoch, study.key, study.config, shard,
            callback=_shard_callback(pool, epoch, study, index, tracker),
            rank_table=study.rank_table)
        for index, shard in enumerate(study.shards)
    ]


def _finish_transpile(pool: SharedWorkerPool, epoch: int,
                      study: _PendingStudy, tracker: _SuiteTracker,
                      transpile_cache: Optional[TranspileCache]) -> None:
    """Merge a rank study's class summaries and queue its synthesis.

    Runs when the last transpile shard lands (or straight from the
    scheduling loop when every pair was warm).  The merged table is sorted
    by (family, width, machine), so it is identical for any shard count,
    completion order, or warm/cold split — which is what keeps cached and
    uncached rankings byte-equal.
    """
    computed = [summary
                for shard_summaries in study.transpile_shard_summaries
                for summary in shard_summaries]
    if transpile_cache is not None:
        for summary in computed:
            transpile_cache.put(
                transpile_cache_key(summary.class_fingerprint,
                                    summary.backend_fingerprint,
                                    summary.level, summary.seed),
                summary)
    # Metrics are recorded parent-side: worker-registry increments die with
    # the worker, but the summaries carry the pass timings home.
    registry = get_registry()
    registry.counter(
        "repro_transpile_classes_total", outcome="computed",
        help="Equivalence-class transpiles of rank-mode studies, by "
             "whether the summary was computed or served from the "
             "transpile cache.").inc(len(computed))
    registry.counter(
        "repro_transpile_classes_total",
        outcome="cache-hit").inc(len(study.transpile_warm))
    for summary in computed:
        for pass_name, seconds in summary.pass_timings:
            registry.histogram(
                "repro_transpile_pass_seconds",
                help="Wall-clock seconds per transpiler pass across "
                     "rank-mode class transpiles.",
                **{"pass": pass_name}).observe(seconds)
    scenario = study.config.scenario
    summaries = sorted(computed + study.transpile_warm,
                       key=lambda s: (s.family, s.width, s.machine))
    study.rank_table = ClassRankTable(
        objective=scenario.ranking_objective,
        level=scenario.ranking_level,
        summaries=summaries)
    tracker.emit("rank-table", key=study.key, phase="transpile",
                 entries=len(summaries), computed=len(computed),
                 cached=len(study.transpile_warm))
    _queue_synthesis(pool, epoch, study, tracker)


def _transpile_callback(pool: SharedWorkerPool, epoch: int,
                        study: _PendingStudy, index: int,
                        tracker: _SuiteTracker,
                        transpile_cache: Optional[TranspileCache]):
    """The completion callback of one transpile shard."""

    def _on_transpile_done(summaries):
        try:
            with study.lock:
                study.transpile_shard_summaries[index] = summaries
                study.transpile_remaining -= 1
                is_last = study.transpile_remaining == 0
            tracker.emit("shard-done", key=study.key, phase="transpile",
                         task_done=True, pairs=len(summaries))
            if is_last:
                _finish_transpile(pool, epoch, study, tracker,
                                  transpile_cache)
        except BaseException as exc:  # surface on the collection thread
            study.callback_error = exc

    return _on_transpile_done


def _queue_simulations(pool: SharedWorkerPool, epoch: int,
                       study: _PendingStudy, tracker: _SuiteTracker) -> None:
    """Queue a study's machine-group simulations (last-shard callback).

    Runs on whichever thread completed the study's final synthesis shard.
    The merged job list is rebuilt in *shard order*, so the grouping — and
    therefore every simulation input — is independent of shard completion
    order.
    """
    jobs = [job for shard_jobs in study.shard_jobs for job in shard_jobs]
    job_counts: Dict[str, int] = {}
    jobs_by_machine: Dict[str, List[Job]] = {}
    for job in jobs:
        job_counts[job.backend_name] = job_counts.get(job.backend_name, 0) + 1
        jobs_by_machine.setdefault(job.backend_name, []).append(job)
    study.groups = plan_machine_groups(job_counts, pool.workers)
    tracker.add_tasks(len(study.groups))
    tracker.emit("sims-queued", key=study.key, phase="simulation",
                 jobs=len(jobs), groups=len(study.groups))

    def _on_group_done(_records, key=study.key):
        tracker.emit("shard-done", key=key, phase="simulation",
                     task_done=True)

    study.sim_handles = [
        pool.submit_simulation(
            epoch, study.key, study.config, group,
            [job for name in group.machines
             for job in jobs_by_machine[name]],
            callback=_on_group_done,
            engine=study.engine)
        for group in study.groups
    ]


def _shard_callback(pool: SharedWorkerPool, epoch: int, study: _PendingStudy,
                    index: int, tracker: _SuiteTracker):
    """The completion callback of one synthesis shard."""

    def _on_shard_done(jobs):
        try:
            with study.lock:
                study.shard_jobs[index] = jobs
                study.shards_remaining -= 1
                is_last = study.shards_remaining == 0
            tracker.emit("shard-done", key=study.key, phase="synthesis",
                         task_done=True, jobs=len(jobs))
            if is_last:
                _queue_simulations(pool, epoch, study, tracker)
        except BaseException as exc:  # surface on the collection thread
            study.callback_error = exc

    return _on_shard_done


def run_suite(
    studies: Sequence[Tuple[str, TraceGeneratorConfig]],
    pool: Optional[SharedWorkerPool] = None,
    *,
    num_shards: Optional[int] = None,
    cache: Optional[Union[TraceCache, str, Path]] = None,
    use_cache: bool = True,
    lazy_cache: bool = False,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[EventCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    engine: str = "batched",
    transpile_workers: Optional[int] = None,
) -> Dict[str, StudyResult]:
    """Run many distinct studies as one interleaved queue on a shared pool.

    ``studies`` is an ordered sequence of ``(fingerprint, config)`` pairs
    with distinct fingerprints (deduplicate identical expansions first —
    the scenario engine does).  Cache hits are served immediately; every
    miss has its synthesis shards queued up front, and a completion
    callback queues its simulation groups the moment its last synthesis
    shard lands, so the pool is never idle behind a per-study phase
    barrier or the submission order of the suite.  Returns a dict keyed
    by fingerprint, in ``studies`` order.

    ``on_event`` receives structured :class:`SuiteEvent`s (shards
    completed / total with a wall-clock ETA, per-study completions) —
    possibly from the pool's result-handler thread.  ``should_stop`` is
    polled between studies; when it returns True the run raises
    :class:`SuiteCancelled` (outstanding pool tasks finish in the
    background and are discarded — the shared pool itself is untouched).

    With ``pool=None`` a transient pool of :func:`default_workers` workers
    is created for the call (terminated, not joined, if a task fails).
    Suite timings are wall-clock *wait* times per phase — they overlap
    across studies, unlike the exclusive per-phase timings of a solo run.

    ``engine`` picks the simulation core for every study of the suite:
    ``"batched"`` (the default) replays machine groups through the
    vectorised :mod:`repro.cloud.fastsim` engine, ``"event"`` drives the
    reference discrete-event loop.  Traces are byte-identical either way,
    so the choice is a runtime knob only — it does not enter config
    fingerprints or cache keys.

    Rank-mode studies (``scenario.ranking_objective`` set) run an extra
    **transpile** phase first: the study's cold equivalence-class pairs
    are sharded across ``transpile_workers`` pool tasks (default: the pool
    width), warm pairs come from the
    :class:`~repro.transpiler.cache.TranspileCache` living in the trace
    cache's directory, and the merged
    :class:`~repro.workloads.transpile_classes.ClassRankTable` ships with
    every synthesis shard.  Like the engine, sharding and caching here are
    runtime knobs — the trace is byte-identical with any worker count,
    cold or warm.
    """
    keys = [key for key, _ in studies]
    if len(set(keys)) != len(keys):
        raise WorkloadError(
            "run_suite requires distinct study fingerprints; deduplicate "
            "identical configs before scheduling them")
    if engine not in ("batched", "event"):
        raise WorkloadError(
            f"unknown simulation engine {engine!r}; "
            "expected 'batched' or 'event'")
    progress = progress or (lambda message: None)
    if cache is not None and not isinstance(cache, TraceCache):
        cache = TraceCache(cache)
    if pool is None:
        with SharedWorkerPool(default_workers()) as transient:
            return run_suite(
                studies, transient, num_shards=num_shards, cache=cache,
                use_cache=use_cache, lazy_cache=lazy_cache,
                progress=progress, on_event=on_event,
                should_stop=should_stop, engine=engine,
                transpile_workers=transpile_workers)

    shards_per_study = max(1, int(num_shards if num_shards is not None
                                  else pool.workers))
    transpile_shards_per_study = max(
        1, int(transpile_workers if transpile_workers is not None
               else pool.workers))
    transpile_cache = (TranspileCache(cache.root)
                       if use_cache and cache is not None else None)
    epoch = pool.next_epoch()
    tracker = _SuiteTracker(on_event)
    results: Dict[str, StudyResult] = {}
    pending: List[_PendingStudy] = []

    def _check_cancel():
        if should_stop is not None and should_stop():
            raise SuiteCancelled("suite run cancelled")

    tracer = get_tracer()
    studies_counter = get_registry().counter(
        "repro_runner_studies_total", outcome="simulated",
        help="Studies executed by run_suite, by outcome.")
    cache_hit_counter = get_registry().counter(
        "repro_runner_studies_total", outcome="cache-hit")

    try:
        # Phase 1 — serve cache hits; queue every miss's synthesis shards
        # with completion callbacks that chain its simulations.
        for key, config in studies:
            _check_cancel()
            started = time.perf_counter()
            if use_cache and cache is not None:
                cached = cache.get(key, lazy=lazy_cache)
                if cached is not None:
                    progress(f"cache hit for config {key}")
                    tracker.emit("cache-hit", key=key, jobs=len(cached))
                    cache_hit_counter.inc()
                    # A cache hit still reports every phase — at zero
                    # cost — so suite-level --profile-phases output stays
                    # uniform; the zero-duration synthesis span marks the
                    # skipped work in the trace view.
                    now = time.perf_counter()
                    tracer.instant("study.cache-hit", study=key,
                                   jobs=len(cached))
                    for phase in ("plan", "transpile", "synthesis",
                                  "simulation", "merge"):
                        tracer.record_span(
                            f"study.{phase}", start=now, duration=0.0,
                            args={"study": key, "cache_hit": True})
                    results[key] = StudyResult(
                        trace=cached,
                        config=config,
                        workers=pool.workers,
                        num_shards=shards_per_study,
                        cache_key=key,
                        cache_hit=True,
                        cache_path=cache.existing_path_for(key),
                        timings={"plan": 0.0, "transpile": 0.0,
                                 "synthesis": 0.0, "simulation": 0.0,
                                 "merge": 0.0,
                                 "total": time.perf_counter() - started},
                        engine=engine,
                    )
                    continue
            studies_counter.inc()
            with tracer.timed("study.plan", study=key) as plan_timer:
                submissions = plan_submissions(config)
                shards = plan_shards(config, submissions, shards_per_study)
            study = _PendingStudy(
                key=key, config=config, shards=shards, started=started,
                plan_seconds=plan_timer.seconds,
                rank_mode=(config.scenario is not None
                           and config.scenario.ranking_objective
                           is not None),
                num_submissions=len(submissions),
                shard_jobs=[None] * len(shards),
                shards_remaining=len(shards),
                engine=engine)
            pending.append(study)
            # Note: with an inline pool each submit runs (and may chain the
            # study's later phases) synchronously right here.
            if study.rank_mode:
                # Rank mode: plan the equivalence-class transpiles, serve
                # warm pairs from the disk cache, shard the cold ones.
                # Synthesis is queued by the last transpile shard's
                # completion callback (immediately, when nothing is cold).
                with tracer.timed("study.transpile-plan",
                                  study=key) as probe_timer:
                    fleet = config.build_fleet()
                    pairs, class_stats = plan_transpile_classes(config,
                                                                fleet)
                    warm, cold = _probe_transpile_cache(
                        pairs, fleet, config, transpile_cache)
                study.transpile_seconds = probe_timer.seconds
                study.transpile_warm = warm
                study.transpile_stats = {**class_stats, "warm": len(warm),
                                         "cold": len(cold)}
                progress(
                    f"study {key} ranks over {class_stats['pairs']} class "
                    f"transpiles ({len(warm)} cached) amortising "
                    f"{class_stats['probes']} per-job probes"
                )
                if cold:
                    study.transpile_shards = plan_transpile_shards(
                        cold, transpile_shards_per_study)
                    study.transpile_shard_summaries = \
                        [None] * len(study.transpile_shards)
                    study.transpile_remaining = len(study.transpile_shards)
                    tracker.add_tasks(len(study.transpile_shards))
                    tracker.emit("transpile-queued", key=key,
                                 phase="transpile",
                                 shards=len(study.transpile_shards),
                                 pairs=len(cold), cached=len(warm))
                    # Timed because an inline (workers == 1) pool runs the
                    # shards synchronously right here — the phase-2 wait
                    # would otherwise report a rank study's dominant cost
                    # as zero.
                    with tracer.timed("study.transpile-queue",
                                      study=key) as submit_timer:
                        study.transpile_handles = [
                            pool.submit_transpile(
                                epoch, key, config, shard,
                                callback=_transpile_callback(
                                    pool, epoch, study, index, tracker,
                                    transpile_cache))
                            for index, shard
                            in enumerate(study.transpile_shards)
                        ]
                    study.transpile_seconds += submit_timer.seconds
                else:
                    _finish_transpile(pool, epoch, study, tracker,
                                      transpile_cache)
            else:
                _queue_synthesis(pool, epoch, study, tracker)
            progress(
                f"queued {len(submissions)} submissions across {len(shards)} "
                f"shards for study {key} ({pool.workers} workers)"
            )

        # Phase 2 — collect each study in order.  Simulations were already
        # queued by the last-shard callbacks; waiting on the synthesis
        # handles first both propagates worker errors and guarantees the
        # callbacks (which run before ``.get()`` returns) have finished.
        for study in pending:
            _check_cancel()
            if study.rank_mode:
                with tracer.timed(
                        "study.transpile", study=study.key,
                        shards=len(study.transpile_shards),
                        warm=len(study.transpile_warm)) as transpile_timer:
                    for handle in study.transpile_handles:
                        handle.get()
                study.transpile_seconds += transpile_timer.seconds
                if study.callback_error is not None:
                    raise WorkloadError(
                        f"scheduling study {study.key} failed: "
                        f"{study.callback_error}") from study.callback_error
                progress(
                    f"transpiled {sum(map(len, study.transpile_shards))} "
                    f"cold classes for study {study.key} in "
                    f"{study.transpile_seconds:.1f}s")
            with tracer.timed("study.synthesis", study=study.key,
                              shards=len(study.shards)) as synth_timer:
                for handle in study.synth_handles:
                    handle.get()
            study.synthesis_seconds = synth_timer.seconds
            if study.callback_error is not None:
                raise WorkloadError(
                    f"scheduling study {study.key} failed: "
                    f"{study.callback_error}") from study.callback_error
            jobs_total = sum(len(shard_jobs)
                             for shard_jobs in study.shard_jobs)
            progress(f"synthesised {jobs_total} jobs for study {study.key} "
                     f"in {study.synthesis_seconds:.1f}s")

            with tracer.timed("study.simulation", study=study.key,
                              groups=len(study.groups),
                              engine=study.engine) as sim_timer:
                per_group_columns = [handle.get()
                                     for handle in study.sim_handles]
            study.simulation_seconds = sim_timer.seconds
            progress(f"simulated {len(study.groups)} machine groups for "
                     f"study {study.key} in {study.simulation_seconds:.1f}s")

            with tracer.timed("study.merge", study=study.key) as merge_timer:
                total_rows = sum(part.rows for part in per_group_columns)
                trace = merge_shard_columns(per_group_columns, metadata={
                    "seed": study.config.seed,
                    "total_jobs": total_rows,
                    "months": study.config.months,
                    "trace_schema": TRACE_SCHEMA_VERSION,
                })
                cache_path = None
                if use_cache and cache is not None:
                    cache_path = cache.put(study.key, trace)
            merge_seconds = merge_timer.seconds

            for phase, seconds in (("plan", study.plan_seconds),
                                   ("transpile", study.transpile_seconds),
                                   ("synthesis", study.synthesis_seconds),
                                   ("simulation", study.simulation_seconds),
                                   ("merge", merge_seconds)):
                get_registry().counter(
                    "repro_runner_phase_seconds_total", phase=phase,
                    help="Cumulative wall-clock seconds spent per study "
                         "phase across every run_suite call.").inc(seconds)

            results[study.key] = StudyResult(
                trace=trace,
                config=study.config,
                workers=pool.workers,
                num_shards=shards_per_study,
                cache_key=study.key,
                cache_hit=False,
                cache_path=cache_path,
                timings={
                    "plan": study.plan_seconds,
                    "transpile": study.transpile_seconds,
                    "synthesis": study.synthesis_seconds,
                    "simulation": study.simulation_seconds,
                    "merge": merge_seconds,
                    "total": time.perf_counter() - study.started,
                },
                shard_sizes=[len(shard) for shard in study.shards],
                group_sizes=[group.expected_jobs for group in study.groups],
                engine=engine,
                transpile=dict(study.transpile_stats),
            )
            tracker.emit(
                "study-done", key=study.key, jobs=total_rows,
                seconds=round(results[study.key].total_seconds, 3))

        tracker.emit("suite-done", studies=len(studies),
                     cache_hits=sum(1 for r in results.values()
                                    if r.cache_hit))
        return {key: results[key] for key, _ in studies}
    finally:
        # Abandoned tasks (cancel / worker failure) may still complete on
        # the shared pool; silence their late events and let their epoch's
        # worker state become evictable.
        tracker.close()
        pool.release_epoch(epoch)


class StudyRunner:
    """Runs one study config to a merged trace across worker processes.

    Pass ``pool`` to schedule onto a long-lived
    :class:`~repro.runner.pool.SharedWorkerPool` (the suite session);
    without one, a transient pool of ``workers`` processes is created per
    :meth:`run` and terminated — not joined — if a worker task raises, so a
    failed map can never hang the run.
    """

    def __init__(
        self,
        config: Optional[TraceGeneratorConfig] = None,
        workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        cache: Optional[Union[TraceCache, str, Path]] = None,
        progress: Optional[ProgressCallback] = None,
        lazy_cache: bool = False,
        pool: Optional[SharedWorkerPool] = None,
        on_event: Optional[EventCallback] = None,
        engine: str = "batched",
        transpile_workers: Optional[int] = None,
    ):
        self.config = config or TraceGeneratorConfig()
        self.pool = pool
        self.engine = engine
        self.transpile_workers = transpile_workers
        default = pool.workers if pool is not None else default_workers()
        self.workers = max(1, int(workers if workers is not None else default))
        self.num_shards = max(1, int(num_shards if num_shards is not None
                                     else self.workers))
        if cache is not None and not isinstance(cache, TraceCache):
            cache = TraceCache(cache)
        self.cache = cache
        #: serve cache hits as lazily loaded column datasets (cheap when the
        #: consumer — e.g. a scenario comparison — reads a few columns)
        self.lazy_cache = bool(lazy_cache)
        self._progress = progress or (lambda message: None)
        self._on_event = on_event

    # -- execution ---------------------------------------------------------------------

    def run(self, use_cache: bool = True) -> StudyResult:
        """Produce the merged study trace (from cache when possible)."""
        key = config_fingerprint(self.config)
        pool = self.pool
        owned = pool is None
        if owned:
            pool = SharedWorkerPool(self.workers)
        try:
            results = run_suite(
                [(key, self.config)], pool,
                num_shards=self.num_shards,
                cache=self.cache,
                use_cache=use_cache,
                lazy_cache=self.lazy_cache,
                progress=self._progress,
                on_event=self._on_event,
                engine=self.engine,
                transpile_workers=self.transpile_workers,
            )
        except BaseException:
            if owned:
                pool.terminate()
            raise
        else:
            if owned:
                pool.close()
        return results[key]


def run_study(
    total_jobs: int = 6000,
    months: Optional[int] = None,
    seed: int = 7,
    *,
    config: Optional[TraceGeneratorConfig] = None,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
    lazy_cache: bool = False,
    pool: Optional[SharedWorkerPool] = None,
    on_event: Optional[EventCallback] = None,
    engine: str = "batched",
    transpile_workers: Optional[int] = None,
) -> StudyResult:
    """One-call entry point: run a study config through the sharded runner.

    Either pass an explicit ``config`` or the common scalar knobs
    (``total_jobs`` / ``months`` / ``seed``).  ``lazy_cache`` defaults to
    False here (a plain study usually consumes the whole trace); the
    scenario entry points default it to True because comparisons read a
    handful of columns — the flag is threaded through either way.
    """
    if config is None:
        kwargs: Dict[str, object] = {"total_jobs": total_jobs, "seed": seed}
        if months is not None:
            kwargs["months"] = months
        config = TraceGeneratorConfig(**kwargs)
    runner = StudyRunner(
        config,
        workers=workers,
        num_shards=num_shards,
        cache=cache_dir,
        progress=progress,
        lazy_cache=lazy_cache,
        pool=pool,
        on_event=on_event,
        engine=engine,
        transpile_workers=transpile_workers,
    )
    return runner.run(use_cache=use_cache)
