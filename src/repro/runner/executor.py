"""The parallel sharded study runner and the suite scheduler.

:class:`StudyRunner` turns one
:class:`~repro.workloads.generator.TraceGeneratorConfig` into a merged
:class:`~repro.workloads.trace.TraceDataset` using a pool of worker
processes, in two embarrassingly parallel stages:

1. **Synthesis** — the submission plan is dealt round-robin across shards
   and each worker synthesises its shard's jobs.  Job randomness is keyed by
   global job index, so the synthesised jobs are identical for any shard or
   worker count.
2. **Simulation** — machines are packed into balanced groups and each worker
   drives its own :class:`~repro.cloud.service.QuantumCloudService` over its
   sub-fleet.  The service draws from per-machine spawned streams, so the
   merged per-machine dynamics equal the single-service run exactly.

:func:`run_suite` generalises the same pipeline to *many* studies on one
:class:`~repro.runner.pool.SharedWorkerPool`: every study's synthesis shards
are queued up front and its simulation groups chase them as soon as its own
synthesis drains, so shards and machine groups of different studies
interleave on the shared workers instead of serialising behind per-study
pool barriers.  Per-study worker state is keyed by config fingerprint (see
:mod:`repro.runner.pool`), which keeps each study a pure function of its
config: same seed in, byte-identical trace out, no matter how the work was
partitioned or which studies ran alongside.

The merged records are sorted by ``(submit_time, job_id)`` and results are
memoised on disk through :class:`~repro.runner.cache.TraceCache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cloud.job import Job
from repro.core.exceptions import WorkloadError
from repro.runner.cache import TraceCache, config_fingerprint
from repro.runner.pool import SharedWorkerPool, default_workers
from repro.runner.sharding import (
    MachineGroup,
    ShardSpec,
    plan_machine_groups,
    plan_shards,
)
from repro.workloads.generator import (
    TraceGeneratorConfig,
    plan_submissions,
)
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    TraceDataset,
)

ProgressCallback = Callable[[str], None]

__all__ = [
    "ProgressCallback",
    "StudyResult",
    "StudyRunner",
    "default_workers",
    "run_study",
    "run_suite",
]


@dataclass
class StudyResult:
    """A merged study trace plus how it was produced."""

    trace: TraceDataset
    config: TraceGeneratorConfig
    workers: int
    num_shards: int
    cache_key: str
    cache_hit: bool = False
    cache_path: Optional[Path] = None
    timings: Dict[str, float] = field(default_factory=dict)
    shard_sizes: List[int] = field(default_factory=list)
    group_sizes: List[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.timings.get("total", 0.0)

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self.trace),
            "workers": self.workers,
            "shards": self.num_shards,
            "cache_hit": self.cache_hit,
            **{f"{name}_seconds": round(value, 3)
               for name, value in sorted(self.timings.items())},
        }


@dataclass
class _PendingStudy:
    """Book-keeping of one cache-missed study flowing through the pool."""

    key: str
    config: TraceGeneratorConfig
    shards: List[ShardSpec]
    started: float
    plan_seconds: float
    synth_handles: List[object] = field(default_factory=list)
    sim_handles: List[object] = field(default_factory=list)
    groups: List[MachineGroup] = field(default_factory=list)
    synthesis_seconds: float = 0.0
    simulation_seconds: float = 0.0


def run_suite(
    studies: Sequence[Tuple[str, TraceGeneratorConfig]],
    pool: Optional[SharedWorkerPool] = None,
    *,
    num_shards: Optional[int] = None,
    cache: Optional[Union[TraceCache, str, Path]] = None,
    use_cache: bool = True,
    lazy_cache: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, StudyResult]:
    """Run many distinct studies as one interleaved queue on a shared pool.

    ``studies`` is an ordered sequence of ``(fingerprint, config)`` pairs
    with distinct fingerprints (deduplicate identical expansions first —
    the scenario engine does).  Cache hits are served immediately; every
    miss has its synthesis shards queued up front, and its simulation
    groups are queued the moment its own synthesis completes, so the pool
    is never idle behind a per-study phase barrier.  Returns a dict keyed
    by fingerprint, in ``studies`` order.

    With ``pool=None`` a transient pool of :func:`default_workers` workers
    is created for the call (terminated, not joined, if a task fails).
    Suite timings are wall-clock *wait* times per phase — they overlap
    across studies, unlike the exclusive per-phase timings of a solo run.
    """
    keys = [key for key, _ in studies]
    if len(set(keys)) != len(keys):
        raise WorkloadError(
            "run_suite requires distinct study fingerprints; deduplicate "
            "identical configs before scheduling them")
    progress = progress or (lambda message: None)
    if cache is not None and not isinstance(cache, TraceCache):
        cache = TraceCache(cache)
    if pool is None:
        with SharedWorkerPool(default_workers()) as transient:
            return run_suite(
                studies, transient, num_shards=num_shards, cache=cache,
                use_cache=use_cache, lazy_cache=lazy_cache, progress=progress)

    shards_per_study = max(1, int(num_shards if num_shards is not None
                                  else pool.workers))
    epoch = pool.next_epoch()
    results: Dict[str, StudyResult] = {}
    pending: List[_PendingStudy] = []

    # Phase 1 — serve cache hits, queue every miss's synthesis shards.
    for key, config in studies:
        started = time.perf_counter()
        if use_cache and cache is not None:
            cached = cache.get(key, lazy=lazy_cache)
            if cached is not None:
                progress(f"cache hit for config {key}")
                results[key] = StudyResult(
                    trace=cached,
                    config=config,
                    workers=pool.workers,
                    num_shards=shards_per_study,
                    cache_key=key,
                    cache_hit=True,
                    cache_path=cache.existing_path_for(key),
                    timings={"total": time.perf_counter() - started},
                )
                continue
        plan_started = time.perf_counter()
        submissions = plan_submissions(config)
        shards = plan_shards(config, submissions, shards_per_study)
        study = _PendingStudy(
            key=key, config=config, shards=shards, started=started,
            plan_seconds=time.perf_counter() - plan_started)
        study.synth_handles = [
            pool.submit_synthesis(epoch, key, config, shard)
            for shard in shards
        ]
        pending.append(study)
        progress(
            f"queued {len(submissions)} submissions across {len(shards)} "
            f"shards for study {key} ({pool.workers} workers)"
        )

    # Phase 2 — as each study's synthesis drains, queue its simulations.
    for study in pending:
        wait_started = time.perf_counter()
        per_shard_jobs = [handle.get() for handle in study.synth_handles]
        study.synthesis_seconds = time.perf_counter() - wait_started
        jobs = [job for shard_jobs in per_shard_jobs for job in shard_jobs]
        progress(f"synthesised {len(jobs)} jobs for study {study.key} in "
                 f"{study.synthesis_seconds:.1f}s")

        job_counts: Dict[str, int] = {}
        jobs_by_machine: Dict[str, List[Job]] = {}
        for job in jobs:
            job_counts[job.backend_name] = job_counts.get(job.backend_name, 0) + 1
            jobs_by_machine.setdefault(job.backend_name, []).append(job)
        study.groups = plan_machine_groups(job_counts, pool.workers)
        study.sim_handles = [
            pool.submit_simulation(
                epoch, study.key, study.config, group,
                [job for name in group.machines
                 for job in jobs_by_machine[name]])
            for group in study.groups
        ]

    # Phase 3 — collect, merge and cache each study in order.
    for study in pending:
        wait_started = time.perf_counter()
        per_group_records = [handle.get() for handle in study.sim_handles]
        study.simulation_seconds = time.perf_counter() - wait_started
        progress(f"simulated {len(study.groups)} machine groups for study "
                 f"{study.key} in {study.simulation_seconds:.1f}s")

        merge_started = time.perf_counter()
        records = [r for group_records in per_group_records
                   for r in group_records]
        records.sort(key=lambda r: (r.submit_time, r.job_id))
        trace = TraceDataset(records, metadata={
            "seed": study.config.seed,
            "total_jobs": len(records),
            "months": study.config.months,
            "trace_schema": TRACE_SCHEMA_VERSION,
        })
        cache_path = None
        if use_cache and cache is not None:
            cache_path = cache.put(study.key, trace)
        merge_seconds = time.perf_counter() - merge_started

        results[study.key] = StudyResult(
            trace=trace,
            config=study.config,
            workers=pool.workers,
            num_shards=shards_per_study,
            cache_key=study.key,
            cache_hit=False,
            cache_path=cache_path,
            timings={
                "plan": study.plan_seconds,
                "synthesis": study.synthesis_seconds,
                "simulation": study.simulation_seconds,
                "merge": merge_seconds,
                "total": time.perf_counter() - study.started,
            },
            shard_sizes=[len(shard) for shard in study.shards],
            group_sizes=[group.expected_jobs for group in study.groups],
        )

    return {key: results[key] for key, _ in studies}


class StudyRunner:
    """Runs one study config to a merged trace across worker processes.

    Pass ``pool`` to schedule onto a long-lived
    :class:`~repro.runner.pool.SharedWorkerPool` (the suite session);
    without one, a transient pool of ``workers`` processes is created per
    :meth:`run` and terminated — not joined — if a worker task raises, so a
    failed map can never hang the run.
    """

    def __init__(
        self,
        config: Optional[TraceGeneratorConfig] = None,
        workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        cache: Optional[Union[TraceCache, str, Path]] = None,
        progress: Optional[ProgressCallback] = None,
        lazy_cache: bool = False,
        pool: Optional[SharedWorkerPool] = None,
    ):
        self.config = config or TraceGeneratorConfig()
        self.pool = pool
        default = pool.workers if pool is not None else default_workers()
        self.workers = max(1, int(workers if workers is not None else default))
        self.num_shards = max(1, int(num_shards if num_shards is not None
                                     else self.workers))
        if cache is not None and not isinstance(cache, TraceCache):
            cache = TraceCache(cache)
        self.cache = cache
        #: serve cache hits as lazily loaded column datasets (cheap when the
        #: consumer — e.g. a scenario comparison — reads a few columns)
        self.lazy_cache = bool(lazy_cache)
        self._progress = progress or (lambda message: None)

    # -- execution ---------------------------------------------------------------------

    def run(self, use_cache: bool = True) -> StudyResult:
        """Produce the merged study trace (from cache when possible)."""
        key = config_fingerprint(self.config)
        pool = self.pool
        owned = pool is None
        if owned:
            pool = SharedWorkerPool(self.workers)
        try:
            results = run_suite(
                [(key, self.config)], pool,
                num_shards=self.num_shards,
                cache=self.cache,
                use_cache=use_cache,
                lazy_cache=self.lazy_cache,
                progress=self._progress,
            )
        except BaseException:
            if owned:
                pool.terminate()
            raise
        else:
            if owned:
                pool.close()
        return results[key]


def run_study(
    total_jobs: int = 6000,
    months: Optional[int] = None,
    seed: int = 7,
    *,
    config: Optional[TraceGeneratorConfig] = None,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
    lazy_cache: bool = False,
    pool: Optional[SharedWorkerPool] = None,
) -> StudyResult:
    """One-call entry point: run a study config through the sharded runner.

    Either pass an explicit ``config`` or the common scalar knobs
    (``total_jobs`` / ``months`` / ``seed``).  ``lazy_cache`` defaults to
    False here (a plain study usually consumes the whole trace); the
    scenario entry points default it to True because comparisons read a
    handful of columns — the flag is threaded through either way.
    """
    if config is None:
        kwargs: Dict[str, object] = {"total_jobs": total_jobs, "seed": seed}
        if months is not None:
            kwargs["months"] = months
        config = TraceGeneratorConfig(**kwargs)
    runner = StudyRunner(
        config,
        workers=workers,
        num_shards=num_shards,
        cache=cache_dir,
        progress=progress,
        lazy_cache=lazy_cache,
        pool=pool,
    )
    return runner.run(use_cache=use_cache)
