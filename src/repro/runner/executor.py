"""The parallel sharded study runner.

:class:`StudyRunner` turns one
:class:`~repro.workloads.generator.TraceGeneratorConfig` into a merged
:class:`~repro.workloads.trace.TraceDataset` using a pool of worker
processes, in two embarrassingly parallel stages:

1. **Synthesis** — the submission plan is dealt round-robin across shards
   and each worker synthesises its shard's jobs.  Job randomness is keyed by
   global job index, so the synthesised jobs are identical for any shard or
   worker count.
2. **Simulation** — machines are packed into balanced groups and each worker
   drives its own :class:`~repro.cloud.service.QuantumCloudService` over its
   sub-fleet.  The service draws from per-machine spawned streams, so the
   merged per-machine dynamics equal the single-service run exactly.

The merged records are sorted by ``(submit_time, job_id)``, making the whole
pipeline a pure function of the config: same seed in, byte-identical trace
out, no matter how the work was partitioned.  Results are memoised on disk
through :class:`~repro.runner.cache.TraceCache`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cloud.job import Job
from repro.cloud.service import QuantumCloudService
from repro.runner.cache import TraceCache, config_fingerprint
from repro.runner.sharding import (
    MachineGroup,
    ShardSpec,
    plan_machine_groups,
    plan_shards,
)
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    plan_submissions,
    record_for,
)
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    JobRecord,
    TraceDataset,
)

ProgressCallback = Callable[[str], None]

# Per-process worker state, populated once by the pool initializer so that
# the fleet and synthesizer are built a single time per worker rather than
# once per shard.
_WORKER: Dict[str, object] = {}


def _init_worker(config: TraceGeneratorConfig) -> None:
    fleet = config.build_fleet()
    _WORKER["config"] = config
    _WORKER["fleet"] = fleet
    _WORKER["synthesizer"] = JobSynthesizer(config, fleet)


def _synthesise_shard_with(synthesizer: JobSynthesizer,
                           shard: ShardSpec) -> List[Job]:
    jobs: List[Job] = []
    for planned in shard.submissions:
        job = synthesizer.synthesise(planned)
        if job is not None:
            jobs.append(job)
    return jobs


def _simulate_group_with(config: TraceGeneratorConfig,
                         fleet: Dict[str, object],
                         group: MachineGroup,
                         jobs: Sequence[Job]) -> List[JobRecord]:
    sub_fleet = {name: fleet[name] for name in group.machines}
    service = QuantumCloudService(sub_fleet, seed=config.seed,
                                  failure_model=config.build_failure_model())
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    for job in ordered:
        service.submit(job)
    service.drain()
    return [record_for(job, fleet) for job in ordered]


def _pool_synthesise(shard: ShardSpec) -> List[Job]:
    return _synthesise_shard_with(_WORKER["synthesizer"], shard)


def _pool_simulate(payload: Tuple[MachineGroup, List[Job]]) -> List[JobRecord]:
    group, jobs = payload
    return _simulate_group_with(_WORKER["config"], _WORKER["fleet"], group, jobs)


@dataclass
class StudyResult:
    """A merged study trace plus how it was produced."""

    trace: TraceDataset
    config: TraceGeneratorConfig
    workers: int
    num_shards: int
    cache_key: str
    cache_hit: bool = False
    cache_path: Optional[Path] = None
    timings: Dict[str, float] = field(default_factory=dict)
    shard_sizes: List[int] = field(default_factory=list)
    group_sizes: List[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.timings.get("total", 0.0)

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": len(self.trace),
            "workers": self.workers,
            "shards": self.num_shards,
            "cache_hit": self.cache_hit,
            **{f"{name}_seconds": round(value, 3)
               for name, value in sorted(self.timings.items())},
        }


def default_workers() -> int:
    """Worker-count default: every core, capped to keep small hosts usable."""
    return max(1, min(os.cpu_count() or 1, 16))


class StudyRunner:
    """Runs one study config to a merged trace across worker processes."""

    def __init__(
        self,
        config: Optional[TraceGeneratorConfig] = None,
        workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        cache: Optional[Union[TraceCache, str, Path]] = None,
        progress: Optional[ProgressCallback] = None,
        lazy_cache: bool = False,
    ):
        self.config = config or TraceGeneratorConfig()
        self.workers = max(1, int(workers if workers is not None
                                  else default_workers()))
        self.num_shards = max(1, int(num_shards if num_shards is not None
                                     else self.workers))
        if cache is not None and not isinstance(cache, TraceCache):
            cache = TraceCache(cache)
        self.cache = cache
        #: serve cache hits as lazily loaded column datasets (cheap when the
        #: consumer — e.g. a scenario comparison — reads a few columns)
        self.lazy_cache = bool(lazy_cache)
        self._progress = progress or (lambda message: None)

    # -- execution ---------------------------------------------------------------------

    def run(self, use_cache: bool = True) -> StudyResult:
        """Produce the merged study trace (from cache when possible)."""
        started = time.perf_counter()
        key = config_fingerprint(self.config)
        if use_cache and self.cache is not None:
            cached = self.cache.get(key, lazy=self.lazy_cache)
            if cached is not None:
                self._progress(f"cache hit for config {key}")
                return StudyResult(
                    trace=cached,
                    config=self.config,
                    workers=self.workers,
                    num_shards=self.num_shards,
                    cache_key=key,
                    cache_hit=True,
                    cache_path=self.cache.existing_path_for(key),
                    timings={"total": time.perf_counter() - started},
                )

        plan_started = time.perf_counter()
        submissions = plan_submissions(self.config)
        shards = plan_shards(self.config, submissions, self.num_shards)
        plan_seconds = time.perf_counter() - plan_started
        self._progress(
            f"planned {len(submissions)} submissions across "
            f"{len(shards)} shards ({self.workers} workers)"
        )

        pool = None
        fleet = None
        try:
            if self.workers > 1:
                context = multiprocessing.get_context(
                    "fork" if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn"
                )
                pool = context.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(self.config,),
                )
            else:
                fleet = self.config.build_fleet()

            synthesis_started = time.perf_counter()
            if pool is not None:
                per_shard_jobs = pool.map(_pool_synthesise, shards)
            else:
                synthesizer = JobSynthesizer(self.config, fleet)
                per_shard_jobs = [
                    _synthesise_shard_with(synthesizer, shard)
                    for shard in shards
                ]
            synthesis_seconds = time.perf_counter() - synthesis_started
            jobs = [job for shard_jobs in per_shard_jobs for job in shard_jobs]
            self._progress(
                f"synthesised {len(jobs)} jobs in {synthesis_seconds:.1f}s"
            )

            job_counts: Dict[str, int] = {}
            jobs_by_machine: Dict[str, List[Job]] = {}
            for job in jobs:
                job_counts[job.backend_name] = job_counts.get(job.backend_name, 0) + 1
                jobs_by_machine.setdefault(job.backend_name, []).append(job)
            groups = plan_machine_groups(job_counts, self.workers)
            payloads = [
                (group, [job for name in group.machines
                         for job in jobs_by_machine[name]])
                for group in groups
            ]

            simulation_started = time.perf_counter()
            if pool is not None:
                per_group_records = pool.map(_pool_simulate, payloads)
            else:
                per_group_records = [
                    _simulate_group_with(self.config, fleet, group, group_jobs)
                    for group, group_jobs in payloads
                ]
            simulation_seconds = time.perf_counter() - simulation_started
            self._progress(
                f"simulated {len(groups)} machine groups in "
                f"{simulation_seconds:.1f}s"
            )
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        merge_started = time.perf_counter()
        records = [r for group_records in per_group_records for r in group_records]
        records.sort(key=lambda r: (r.submit_time, r.job_id))
        trace = TraceDataset(records, metadata={
            "seed": self.config.seed,
            "total_jobs": len(records),
            "months": self.config.months,
            "trace_schema": TRACE_SCHEMA_VERSION,
        })
        cache_path = None
        if use_cache and self.cache is not None:
            cache_path = self.cache.put(key, trace)
        merge_seconds = time.perf_counter() - merge_started

        return StudyResult(
            trace=trace,
            config=self.config,
            workers=self.workers,
            num_shards=self.num_shards,
            cache_key=key,
            cache_hit=False,
            cache_path=cache_path,
            timings={
                "plan": plan_seconds,
                "synthesis": synthesis_seconds,
                "simulation": simulation_seconds,
                "merge": merge_seconds,
                "total": time.perf_counter() - started,
            },
            shard_sizes=[len(shard) for shard in shards],
            group_sizes=[group.expected_jobs for group in groups],
        )


def run_study(
    total_jobs: int = 6000,
    months: Optional[int] = None,
    seed: int = 7,
    *,
    config: Optional[TraceGeneratorConfig] = None,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    use_cache: bool = True,
) -> StudyResult:
    """One-call entry point: run a study config through the sharded runner.

    Either pass an explicit ``config`` or the common scalar knobs
    (``total_jobs`` / ``months`` / ``seed``).
    """
    if config is None:
        kwargs: Dict[str, object] = {"total_jobs": total_jobs, "seed": seed}
        if months is not None:
            kwargs["months"] = months
        config = TraceGeneratorConfig(**kwargs)
    runner = StudyRunner(
        config,
        workers=workers,
        num_shards=num_shards,
        cache=cache_dir,
        progress=progress,
    )
    return runner.run(use_cache=use_cache)
