"""Parallel sharded execution of the study trace pipeline.

The runner turns the trace generation behind every figure of the paper into
an embarrassingly parallel workload:

* :mod:`repro.runner.sharding` — deterministic partitioning of the
  submission plan (synthesis shards) and of the fleet (simulation groups).
* :mod:`repro.runner.pool` — :class:`SharedWorkerPool`, the persistent
  pool/session object every study schedules onto, with per-study worker
  state keyed by config fingerprint.
* :mod:`repro.runner.executor` — :class:`StudyRunner`, which executes both
  stages on a (shared or transient) pool and merges the result with stable
  ordering; :func:`run_study` is the one-call entry point and
  :func:`run_suite` schedules many distinct studies as one interleaved
  queue over a single pool.
* :mod:`repro.runner.cache` — the on-disk :class:`TraceCache` keyed by a
  content fingerprint of the generator config.

The merged trace is a pure function of the
:class:`~repro.workloads.generator.TraceGeneratorConfig`: worker count,
shard count and which studies share the pool only change how fast it is
produced, never its bytes.
"""

from repro.runner.cache import CacheEntry, TraceCache, config_fingerprint
from repro.runner.executor import (
    EventCallback,
    StudyResult,
    StudyRunner,
    SuiteCancelled,
    SuiteEvent,
    default_workers,
    run_study,
    run_suite,
)
from repro.runner.pool import SharedWorkerPool
from repro.runner.sharding import (
    MachineGroup,
    ShardSpec,
    plan_machine_groups,
    plan_shards,
)

__all__ = [
    "CacheEntry",
    "EventCallback",
    "MachineGroup",
    "ShardSpec",
    "SharedWorkerPool",
    "StudyResult",
    "StudyRunner",
    "SuiteCancelled",
    "SuiteEvent",
    "TraceCache",
    "config_fingerprint",
    "default_workers",
    "plan_machine_groups",
    "plan_shards",
    "run_study",
    "run_suite",
]
