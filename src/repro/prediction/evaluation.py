"""Error metrics for the runtime-prediction study.

The paper evaluates its predictor with the Pearson correlation (Fig. 15) and
argues, for the worst machine, that the *absolute* errors are small even
where the correlation looks poor (Fig. 16 / Vigo).  This module supplies the
absolute-error side of that argument: MAE, RMSE, MAPE and a per-machine
evaluation table computed from a fitted study's held-out predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.exceptions import PredictionError
from repro.prediction.runtime_model import MachinePredictionResult


def mean_absolute_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """MAE in the same units as the inputs (minutes for runtimes)."""
    actual_array, predicted_array = _validate(actual, predicted)
    return float(np.mean(np.abs(actual_array - predicted_array)))


def root_mean_squared_error(actual: Sequence[float],
                            predicted: Sequence[float]) -> float:
    """RMSE in the same units as the inputs."""
    actual_array, predicted_array = _validate(actual, predicted)
    return float(np.sqrt(np.mean((actual_array - predicted_array) ** 2)))


def mean_absolute_percentage_error(actual: Sequence[float],
                                   predicted: Sequence[float]) -> float:
    """MAPE over the samples with non-zero actual values (as a fraction)."""
    actual_array, predicted_array = _validate(actual, predicted)
    mask = np.abs(actual_array) > 1e-12
    if not np.any(mask):
        raise PredictionError("MAPE undefined: every actual value is zero")
    return float(np.mean(
        np.abs((actual_array[mask] - predicted_array[mask]) / actual_array[mask])
    ))


def _validate(actual: Sequence[float], predicted: Sequence[float]):
    actual_array = np.asarray(actual, dtype=float)
    predicted_array = np.asarray(predicted, dtype=float)
    if actual_array.size == 0:
        raise PredictionError("cannot evaluate an empty prediction set")
    if actual_array.shape != predicted_array.shape:
        raise PredictionError("actual and predicted must have the same length")
    return actual_array, predicted_array


@dataclass(frozen=True)
class PredictionErrorReport:
    """Absolute-error view of one machine's held-out predictions."""

    machine: str
    samples: int
    correlation: float
    mae_minutes: float
    rmse_minutes: float
    mape: float
    actual_range_minutes: float

    @property
    def relative_mae(self) -> float:
        """MAE relative to the machine's runtime range (the Fig. 16 argument)."""
        if self.actual_range_minutes <= 0:
            return 0.0
        return self.mae_minutes / self.actual_range_minutes

    def as_dict(self) -> Dict[str, float]:
        return {
            "machine": self.machine,
            "samples": float(self.samples),
            "correlation": self.correlation,
            "mae_minutes": self.mae_minutes,
            "rmse_minutes": self.rmse_minutes,
            "mape": self.mape,
            "actual_range_minutes": self.actual_range_minutes,
            "relative_mae": self.relative_mae,
        }


def evaluate_study(results: Mapping[str, MachinePredictionResult]
                   ) -> Dict[str, PredictionErrorReport]:
    """Build per-machine absolute-error reports from a fitted study."""
    if not results:
        raise PredictionError("the prediction study produced no results")
    reports: Dict[str, PredictionErrorReport] = {}
    for machine, result in results.items():
        actual = result.test_actual_minutes
        predicted = result.test_predicted_minutes
        if not actual or len(actual) != len(predicted):
            continue
        reports[machine] = PredictionErrorReport(
            machine=machine,
            samples=len(actual),
            correlation=result.full_model_correlation,
            mae_minutes=mean_absolute_error(actual, predicted),
            rmse_minutes=root_mean_squared_error(actual, predicted),
            mape=mean_absolute_percentage_error(actual, predicted),
            actual_range_minutes=float(max(actual) - min(actual)),
        )
    if not reports:
        raise PredictionError("no machine in the study had held-out predictions")
    return reports
