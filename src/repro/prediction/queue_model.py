"""Queue-wait prediction.

The paper's recommendation 5 (Section V-E) calls for research on predicting
queuing times with quantitative confidence levels, citing the HPC literature
on bound prediction.  This module implements a pragmatic baseline: an
empirical per-machine quantile predictor conditioned on the pending-job
count observed at submission, which is exactly the information a client can
see on the IBM dashboard before submitting.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.exceptions import PredictionError
from repro.workloads.trace import TraceDataset


@dataclass(frozen=True)
class QueuePrediction:
    """Point estimate plus a confidence interval for a queue wait (minutes)."""

    machine: str
    expected_minutes: float
    lower_minutes: float
    upper_minutes: float
    confidence: float
    based_on_jobs: int

    def contains(self, observed_minutes: float) -> bool:
        return self.lower_minutes <= observed_minutes <= self.upper_minutes


class QueueTimePredictor:
    """Empirical quantile predictor of queue waits per machine.

    Training groups historical jobs by machine and by coarse pending-load
    bucket; prediction returns the median and a central confidence interval
    of the matching bucket (falling back to the whole machine history when a
    bucket is empty).
    """

    #: pending-job bucket edges (jobs ahead at submission)
    BUCKET_EDGES: Tuple[int, ...] = (0, 5, 20, 50, 100, 250, 1000)

    def __init__(self, confidence: float = 0.8):
        if not 0 < confidence < 1:
            raise PredictionError("confidence must be in (0, 1)")
        self.confidence = confidence
        self._history: Dict[str, Dict[int, List[float]]] = {}
        self._machine_history: Dict[str, List[float]] = {}

    # -- training -------------------------------------------------------------------

    def fit(self, trace: TraceDataset) -> "QueueTimePredictor":
        minutes = trace.values("queue_minutes")
        valid = ~np.isnan(minutes)
        pending = trace.values("pending_ahead")
        buckets = np.searchsorted(self.BUCKET_EDGES,
                                  np.maximum(pending, 0), side="right") - 1
        machines = trace.values("machine")
        for machine, bucket, queue_minutes, ok in zip(
                machines.tolist(), buckets.tolist(), minutes.tolist(),
                valid.tolist()):
            if not ok:
                continue
            per_machine = self._history.setdefault(machine, {})
            per_machine.setdefault(bucket, []).append(queue_minutes)
            self._machine_history.setdefault(machine, []).append(queue_minutes)
        if not self._machine_history:
            raise PredictionError("trace contains no queue observations")
        return self

    @classmethod
    def _bucket_for(cls, pending_ahead: int) -> int:
        return bisect.bisect_right(cls.BUCKET_EDGES, max(0, pending_ahead)) - 1

    # -- prediction -----------------------------------------------------------------

    def predict(self, machine: str, pending_ahead: int = 0) -> QueuePrediction:
        history = self._machine_history.get(machine)
        if not history:
            raise PredictionError(f"no history for machine {machine!r}")
        bucket = self._bucket_for(pending_ahead)
        samples = self._history.get(machine, {}).get(bucket) or history
        array = np.asarray(samples, dtype=float)
        alpha = (1.0 - self.confidence) / 2.0
        return QueuePrediction(
            machine=machine,
            expected_minutes=float(np.median(array)),
            lower_minutes=float(np.percentile(array, 100 * alpha)),
            upper_minutes=float(np.percentile(array, 100 * (1 - alpha))),
            confidence=self.confidence,
            based_on_jobs=int(array.size),
        )

    def coverage(self, trace: TraceDataset) -> float:
        """Fraction of jobs whose observed wait falls inside the interval."""
        covered = 0
        counted = 0
        minutes = trace.values("queue_minutes")
        valid = ~np.isnan(minutes)
        pending = trace.values("pending_ahead")
        machines = trace.values("machine")
        for machine, pending_ahead, queue_minutes, ok in zip(
                machines.tolist(), pending.tolist(), minutes.tolist(),
                valid.tolist()):
            if not ok or machine not in self._machine_history:
                continue
            prediction = self.predict(machine, pending_ahead)
            counted += 1
            if prediction.contains(queue_minutes):
                covered += 1
        if counted == 0:
            raise PredictionError("no predictable jobs in the trace")
        return covered / counted
