"""Feature extraction for the runtime-prediction model.

Section VI-C studies seven features, added cumulatively in Fig. 15:
batch size, number of shots, circuit depth, circuit width, total gate
operations, memory slots required, and machine size (qubits).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.exceptions import PredictionError
from repro.workloads.trace import JobRecord, TraceDataset

#: Feature order used throughout the prediction study (Fig. 15's legend).
FEATURE_NAMES: Tuple[str, ...] = (
    "batch_size",
    "shots",
    "depth",
    "width",
    "gate_ops",
    "memory_slots",
    "machine_qubits",
)

#: The cumulative feature sets of Fig. 15: "Batch", "+Shots", "+Depth", ...
CUMULATIVE_FEATURE_SETS: Tuple[Tuple[str, ...], ...] = tuple(
    FEATURE_NAMES[: i + 1] for i in range(len(FEATURE_NAMES))
)


def feature_vector(record: JobRecord) -> Dict[str, float]:
    """The full feature dictionary of one job."""
    return {
        "batch_size": float(record.batch_size),
        "shots": float(record.shots),
        "depth": float(record.circuit_depth),
        "width": float(record.circuit_width),
        "gate_ops": float(record.circuit_gates),
        "memory_slots": float(record.memory_slots),
        "machine_qubits": float(record.machine_qubits),
    }


#: Trace column backing each prediction feature.
_FEATURE_COLUMNS: Dict[str, str] = {
    "batch_size": "batch_size",
    "shots": "shots",
    "depth": "circuit_depth",
    "width": "circuit_width",
    "gate_ops": "circuit_gates",
    "memory_slots": "memory_slots",
    "machine_qubits": "machine_qubits",
}


def feature_matrix(trace: TraceDataset,
                   features: Sequence[str] = FEATURE_NAMES
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Build (X, y) where y is the job run time in minutes.

    Jobs without a run time (cancelled before running) are excluded.  The
    matrix is assembled by stacking trace columns — no per-record walk.
    """
    unknown = [f for f in features if f not in FEATURE_NAMES]
    if unknown:
        raise PredictionError(f"unknown features: {unknown}")
    run_minutes = trace.values("run_minutes")
    valid = ~np.isnan(run_minutes) & (run_minutes > 0)
    if not valid.any():
        raise PredictionError("trace has no completed jobs with run times")
    columns = [
        trace.values(_FEATURE_COLUMNS[name])[valid].astype(float)
        for name in features
    ]
    return np.column_stack(columns), run_minutes[valid]
