"""Execution-time and queue-time prediction (Section VI-C of the paper).

* :mod:`repro.prediction.features` — the feature vector of Section VI-C:
  batch size, shots, depth, width, gate operations, memory slots, machine
  qubits.
* :mod:`repro.prediction.runtime_model` — the product-of-linear-terms model
  ``prod(a_i + b_i * x_i)`` fitted with ``scipy.optimize.curve_fit``, the
  70/30 train/test split, and the per-machine Pearson correlations of
  Fig. 15 / per-job traces of Fig. 16.
* :mod:`repro.prediction.queue_model` — a queue-wait estimator implementing
  the paper's recommendation that queue-time prediction is worth pursuing.
"""

from repro.prediction.features import (
    FEATURE_NAMES,
    CUMULATIVE_FEATURE_SETS,
    feature_matrix,
    feature_vector,
)
from repro.prediction.runtime_model import (
    ProductLinearModel,
    MachinePredictionResult,
    RuntimePredictionStudy,
    train_test_split,
)
from repro.prediction.evaluation import (
    PredictionErrorReport,
    evaluate_study,
    mean_absolute_error,
    mean_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.prediction.queue_model import QueueTimePredictor, QueuePrediction

__all__ = [
    "FEATURE_NAMES",
    "CUMULATIVE_FEATURE_SETS",
    "feature_matrix",
    "feature_vector",
    "ProductLinearModel",
    "MachinePredictionResult",
    "RuntimePredictionStudy",
    "train_test_split",
    "QueueTimePredictor",
    "QueuePrediction",
    "PredictionErrorReport",
    "evaluate_study",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_squared_error",
]
