"""The product-of-linear-terms runtime predictor (Section VI-C).

The model is exactly the paper's: ``runtime = prod_i (a_i + b_i * x_i)``
over the selected features, fitted per machine with
``scipy.optimize.curve_fit`` on a 70/30 train/test split, and evaluated by
the Pearson correlation between predicted and actual runtimes on the test
split (Fig. 15).  Fig. 16's per-job predicted-vs-actual traces come from the
same fitted models.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from repro.analysis.stats import pearson_correlation
from repro.core.exceptions import PredictionError
from repro.core.rng import RandomSource
from repro.prediction.features import (
    CUMULATIVE_FEATURE_SETS,
    FEATURE_NAMES,
    feature_matrix,
)
from repro.workloads.trace import TraceDataset


def train_test_split(trace: TraceDataset, train_fraction: float = 0.7,
                     seed: int = 3) -> Tuple[TraceDataset, TraceDataset]:
    """Random 70/30 split of a trace into train and test subsets."""
    if not 0 < train_fraction < 1:
        raise PredictionError("train_fraction must be in (0, 1)")
    size = len(trace)
    if size < 4:
        raise PredictionError("need at least 4 records to split")
    rng = RandomSource(seed, name="train_test_split")
    indices = list(range(size))
    rng.shuffle(indices)
    cut = max(1, int(round(train_fraction * size)))
    cut = min(cut, size - 1)
    train_idx = set(indices[:cut])
    train = trace.take(sorted(train_idx))
    test = trace.take(sorted(set(indices) - train_idx))
    return train, test


class ProductLinearModel:
    """``prod_i (a_i + b_i * x_i)`` fitted with non-linear least squares."""

    def __init__(self, features: Sequence[str] = FEATURE_NAMES):
        unknown = [f for f in features if f not in FEATURE_NAMES]
        if unknown:
            raise PredictionError(f"unknown features: {unknown}")
        if not features:
            raise PredictionError("the model needs at least one feature")
        self.features: Tuple[str, ...] = tuple(features)
        self._parameters: Optional[np.ndarray] = None
        self._scales: Optional[np.ndarray] = None

    # -- model function ---------------------------------------------------------------

    @staticmethod
    def _product(x: np.ndarray, *params: float) -> np.ndarray:
        num_features = x.shape[1]
        result = np.ones(x.shape[0], dtype=float)
        for index in range(num_features):
            a = params[2 * index]
            b = params[2 * index + 1]
            result = result * (a + b * x[:, index])
        return result

    # -- fitting -----------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, max_evaluations: int = 20000
            ) -> "ProductLinearModel":
        if x.ndim != 2 or x.shape[1] != len(self.features):
            raise PredictionError(
                f"feature matrix must have {len(self.features)} columns"
            )
        if x.shape[0] != y.shape[0]:
            raise PredictionError("X and y must have the same number of rows")
        if x.shape[0] < 2 * len(self.features):
            raise PredictionError(
                "not enough samples to fit the model "
                f"({x.shape[0]} rows for {len(self.features)} features)"
            )
        # Normalise features to keep curve_fit well conditioned.
        scales = np.maximum(np.abs(x).max(axis=0), 1e-9)
        x_scaled = x / scales
        mean_y = max(float(np.mean(y)), 1e-9)
        initial = []
        for _ in self.features:
            initial.extend([mean_y ** (1.0 / len(self.features)), 0.1])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                parameters, _ = curve_fit(
                    self._product, x_scaled, y, p0=initial,
                    maxfev=max_evaluations,
                )
            except RuntimeError as exc:
                raise PredictionError(f"curve_fit failed to converge: {exc}") from exc
        self._parameters = np.asarray(parameters, dtype=float)
        self._scales = scales
        return self

    @property
    def is_fitted(self) -> bool:
        return self._parameters is not None

    @property
    def parameters(self) -> np.ndarray:
        if self._parameters is None:
            raise PredictionError("model is not fitted")
        return np.array(self._parameters)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._parameters is None or self._scales is None:
            raise PredictionError("model is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != len(self.features):
            raise PredictionError(
                f"feature matrix must have {len(self.features)} columns"
            )
        predictions = self._product(x / self._scales, *self._parameters)
        return np.maximum(predictions, 0.0)


@dataclass
class MachinePredictionResult:
    """Per-machine outcome of the prediction study (one Fig. 15 bar group)."""

    machine: str
    num_jobs: int
    correlations: Dict[str, float] = field(default_factory=dict)
    test_actual_minutes: List[float] = field(default_factory=list)
    test_predicted_minutes: List[float] = field(default_factory=list)

    @property
    def best_correlation(self) -> float:
        if not self.correlations:
            return 0.0
        return max(self.correlations.values())

    @property
    def full_model_correlation(self) -> float:
        """Correlation of the model using every feature (last Fig. 15 bar)."""
        if not self.correlations:
            return 0.0
        label = _feature_set_label(CUMULATIVE_FEATURE_SETS[-1])
        return self.correlations.get(label, self.best_correlation)


def _feature_set_label(features: Sequence[str]) -> str:
    """Fig. 15 legend label for a cumulative feature set."""
    pretty = {
        "batch_size": "Batch",
        "shots": "+Shots",
        "depth": "+Depth",
        "width": "+Width",
        "gate_ops": "+GateOps",
        "memory_slots": "+MemSlots",
        "machine_qubits": "+Qubits",
    }
    return pretty[features[-1]] if len(features) > 1 else pretty[features[0]]


class RuntimePredictionStudy:
    """Runs the full Fig. 15 / Fig. 16 study over a trace."""

    def __init__(self, min_jobs_per_machine: int = 40, train_fraction: float = 0.7,
                 seed: int = 3):
        self.min_jobs_per_machine = min_jobs_per_machine
        self.train_fraction = train_fraction
        self.seed = seed

    def run(self, trace: TraceDataset,
            feature_sets: Sequence[Sequence[str]] = CUMULATIVE_FEATURE_SETS
            ) -> Dict[str, MachinePredictionResult]:
        """Fit and evaluate per-machine models for each cumulative feature set."""
        results: Dict[str, MachinePredictionResult] = {}
        for machine, subset in trace.group_by_machine().items():
            completed = subset.completed()
            if len(completed) < self.min_jobs_per_machine:
                continue
            result = MachinePredictionResult(machine=machine, num_jobs=len(completed))
            train, test = train_test_split(completed, self.train_fraction, self.seed)
            for features in feature_sets:
                label = _feature_set_label(features)
                try:
                    x_train, y_train = feature_matrix(train, features)
                    x_test, y_test = feature_matrix(test, features)
                    model = ProductLinearModel(features).fit(x_train, y_train)
                    predicted = model.predict(x_test)
                    correlation = pearson_correlation(predicted, y_test)
                except PredictionError:
                    continue
                result.correlations[label] = correlation
                if features == tuple(feature_sets[-1]) or list(features) == list(
                        feature_sets[-1]):
                    result.test_actual_minutes = [float(v) for v in y_test]
                    result.test_predicted_minutes = [float(v) for v in predicted]
            if result.correlations:
                results[machine] = result
        if not results:
            raise PredictionError(
                "no machine had enough jobs for the prediction study"
            )
        return results
