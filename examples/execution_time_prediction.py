"""Execution-time prediction (the paper's Section VI-C study).

Generates a synthetic study trace, fits the product-of-linear-terms model
``prod(a_i + b_i * x_i)`` per machine on a 70/30 train/test split, and
reports the Fig. 15 correlations and a Fig. 16-style predicted-vs-actual
comparison for the best and worst machines.  Also demonstrates the
queue-time predictor built on the same trace.

Run with:  python examples/execution_time_prediction.py [num_jobs]
"""

import sys

import numpy as np

from repro.analysis.report import render_table
from repro.prediction import QueueTimePredictor, RuntimePredictionStudy
from repro.workloads import TraceGenerator, TraceGeneratorConfig


def main() -> None:
    total_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"generating a synthetic study trace with {total_jobs} jobs ...")
    trace = TraceGenerator(TraceGeneratorConfig(total_jobs=total_jobs,
                                                seed=13)).generate()

    # --- Fig. 15: per-machine correlations with cumulative feature sets ----------
    study = RuntimePredictionStudy(min_jobs_per_machine=50)
    results = study.run(trace)
    rows = []
    for machine, result in sorted(results.items()):
        rows.append({
            "machine": machine,
            "jobs": result.num_jobs,
            "batch_only": round(result.correlations.get("Batch", float("nan")), 3),
            "batch+shots": round(result.correlations.get("+Shots", float("nan")), 3),
            "all_features": round(result.full_model_correlation, 3),
        })
    print(render_table("Fig. 15 — predicted vs actual runtime correlation", rows))
    correlations = [r.full_model_correlation for r in results.values()]
    print(f"machines with correlation >= 0.95: "
          f"{sum(c >= 0.95 for c in correlations)}/{len(correlations)} "
          "(paper: all but two)\n")

    # --- Fig. 16: the best and the worst machine ---------------------------------
    ranked = sorted(results.values(), key=lambda r: r.full_model_correlation)
    for label, result in (("best", ranked[-1]), ("worst", ranked[0])):
        actual = np.asarray(result.test_actual_minutes)
        predicted = np.asarray(result.test_predicted_minutes)
        error = np.abs(actual - predicted)
        print(f"{label} machine {result.machine}: correlation "
              f"{result.full_model_correlation:.3f}, runtime range "
              f"{actual.min():.1f}-{actual.max():.1f} min, median abs error "
              f"{np.median(error):.2f} min")
    print("(the 'worst' machine mirrors the paper's Vigo: a narrow runtime "
          "range makes small absolute errors look like poor correlation)\n")

    # --- queue-time prediction (recommendation V-E.1) -----------------------------
    predictor = QueueTimePredictor(confidence=0.8).fit(trace)
    busiest = max(trace.machines(),
                  key=lambda m: len(trace.for_machine(m)))
    for pending in (2, 50, 500):
        prediction = predictor.predict(busiest, pending_ahead=pending)
        print(f"queue forecast on {busiest} with {pending} jobs pending: "
              f"median {prediction.expected_minutes:.0f} min, 80% interval "
              f"[{prediction.lower_minutes:.0f}, {prediction.upper_minutes:.0f}] min")
    print(f"interval coverage on the trace: {predictor.coverage(trace):.0%}")


if __name__ == "__main__":
    main()
