"""What-if studies over the cloud simulation with the scenario engine.

The paper's recommendations (fidelity/queue trade-offs, calibration-aware
scheduling, machine selection) are counterfactual claims — this example
evaluates a few of them by re-running the fleet under perturbed conditions
and comparing the headline metrics against the baseline study:

* what if demand surges 60%?
* what if the busiest early machine goes down for five months?
* what if calibration drifts 3x faster?
* what if every user adopts the balanced selection objective (V-E.3)?

Run with:  python examples/scenario_whatif.py
           REPRO_BENCH_JOBS=2000 python examples/scenario_whatif.py
"""

import os

from repro.analysis.compare import compare_suite
from repro.core.env import env_int
from repro.scenarios import ScenarioEngine, resolve_scenarios
from repro.workloads.generator import TraceGeneratorConfig

SCENARIOS = ("baseline", "demand-surge", "machine-outage",
             "calibration-drift", "policy-swap")


def main() -> None:
    config = TraceGeneratorConfig(
        total_jobs=env_int("REPRO_BENCH_JOBS", 600),
        months=env_int("REPRO_BENCH_MONTHS", 8),
        seed=env_int("REPRO_BENCH_SEED", 7),
    )
    engine = ScenarioEngine(
        config,
        cache=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
        progress=lambda message: print(f"  [engine] {message}"),
    )
    suite = engine.run(resolve_scenarios(SCENARIOS))

    print()
    for run in suite:
        hit = " (cache hit)" if run.cache_hit else ""
        print(f"{run.name}: {len(run.trace)} jobs, "
              f"fingerprint {run.fingerprint}{hit}")

    report = compare_suite(suite)
    print()
    print(report.render_markdown())
    print()
    print("Scenario catalog:")
    for run in suite:
        print(f"  {run.name}: {run.scenario.describe()}")


if __name__ == "__main__":
    main()
