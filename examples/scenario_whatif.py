"""What-if studies over the cloud simulation with the scenario engine.

The paper's recommendations (fidelity/queue trade-offs, calibration-aware
scheduling, machine selection) are counterfactual claims — this example
evaluates a few of them by re-running the fleet under perturbed conditions
and comparing the headline metrics against the baseline study:

* what if demand surges 60%?
* what if the busiest early machine goes down for five months?
* what if calibration drifts 3x faster?
* what if every user adopts the balanced selection objective (V-E.3)?
* how do queue times scale as the external backlog doubles? (a sweep)

Every scenario — including each grid point of the sweep and each seed
replicate — is scheduled on **one shared worker pool**, so small studies
interleave instead of serialising behind per-scenario pools.  Replicates
re-roll the root seed and the comparison aggregates them into mean ± 95%
CI per headline metric.

Run with:  python examples/scenario_whatif.py
           REPRO_BENCH_JOBS=2000 python examples/scenario_whatif.py
           REPRO_REPLICATES=3 python examples/scenario_whatif.py
"""

import os

from repro.analysis.compare import compare_suite
from repro.core.env import env_int
from repro.scenarios import (
    BacklogShift,
    Scenario,
    ScenarioEngine,
    SweepValues,
    replicate_scenarios,
    resolve_scenarios,
)
from repro.workloads.generator import TraceGeneratorConfig

SCENARIOS = ("baseline", "demand-surge", "machine-outage",
             "calibration-drift", "policy-swap")

BACKLOG_SWEEP = Scenario(
    "backlog-pressure",
    description="external backlog pressure grid",
    perturbations=(BacklogShift(scale=SweepValues(2.0, 4.0)),),
)


def main() -> None:
    config = TraceGeneratorConfig(
        total_jobs=env_int("REPRO_BENCH_JOBS", 600),
        months=env_int("REPRO_BENCH_MONTHS", 8),
        seed=env_int("REPRO_BENCH_SEED", 7),
    )
    scenarios = [*resolve_scenarios(SCENARIOS), BACKLOG_SWEEP]
    replicates = env_int("REPRO_REPLICATES", 2)
    scenarios = replicate_scenarios(scenarios, replicates,
                                    base_seed=config.seed)

    engine = ScenarioEngine(
        config,
        cache=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
        progress=lambda message: print(f"  [engine] {message}"),
    )
    suite = engine.run(scenarios)

    print()
    for run in suite:
        hit = " (cache hit)" if run.cache_hit else ""
        print(f"{run.name}: {len(run.trace)} jobs, "
              f"fingerprint {run.fingerprint}{hit}")

    report = compare_suite(suite)
    print()
    print(f"Headline metrics are mean ±95% CI over {replicates} seed "
          f"replicates; replicate rows aggregate under their base scenario.")
    print()
    print(report.render_markdown())
    print()
    print("Scenario catalog:")
    seen = set()
    for run in suite:
        base = run.scenario.replicate_of or run.name
        if base not in seen:
            seen.add(base)
            print(f"  {base}: {run.scenario.describe()}")


if __name__ == "__main__":
    main()
