"""Regenerate the whole characterisation study in one call.

Combines the cloud dashboard view of the fleet with
:func:`repro.analysis.reproduce_all`, which runs every trace-driven analysis
of the paper (Figures 2-4 and 8-14) on a synthetic study trace and bundles
the results into a single JSON-serialisable report.  The trace itself comes
from the parallel sharded study runner (:mod:`repro.runner`), which spreads
generation across every core and caches the result on disk, so a second run
is instant.  (``python -m repro report`` is the CLI flavour of this script.)

Run with:  python examples/full_study_report.py [num_jobs] [output.json]
"""

import json
import sys

from repro.analysis import reproduce_all
from repro.cloud import CloudDashboard
from repro.devices import fleet_in_study
from repro.runner import run_study


def main() -> None:
    total_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    output_path = sys.argv[2] if len(sys.argv) > 2 else None

    fleet = fleet_in_study(seed=7)
    dashboard = CloudDashboard(fleet, seed=7)
    print(dashboard.render(at_time=0.0))
    least_busy = dashboard.least_busy(at_time=0.0, min_qubits=5)
    best = dashboard.best_calibrated(at_time=0.0, min_qubits=5)
    print(f"\nleast busy 5q+ machine right now: {least_busy.machine} "
          f"({least_busy.pending_jobs:.0f} pending jobs)")
    print(f"best calibrated 5q+ machine right now: {best.machine} "
          f"(average CX error {best.average_cx_error:.3%})\n")

    print(f"generating a {total_jobs}-job study trace ...")
    result = run_study(total_jobs=total_jobs, seed=7,
                       cache_dir=".repro-cache")
    print(f"  {'cache hit' if result.cache_hit else 'generated'} in "
          f"{result.total_seconds:.1f}s with {result.workers} workers\n")
    report = reproduce_all(result.trace, fleet=fleet)
    print(report.render())

    if output_path:
        with open(output_path, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nfull report written to {output_path}")


if __name__ == "__main__":
    main()
