"""Compile-time scaling study (the paper's Fig. 5, at adjustable scale).

Compiles Quantum Fourier Transform circuits of growing size against
correspondingly sized devices and reports the per-pass compile time,
showing that layout/routing dominate and how the total grows toward large
machines.

Run with:  python examples/compile_time_scaling.py [max_qubits]
(the default maximum of 64 qubits takes a few seconds; larger values grow
quickly, exactly as the paper warns).
"""

import sys

from repro.analysis.report import render_table
from repro.circuits import qft_circuit
from repro.devices import build_backend, fake_large_backend
from repro.transpiler import preset_pass_manager


def compile_and_time(num_qubits: int):
    """Compile a QFT of the given size on a device that just fits it."""
    if num_qubits <= 65:
        backend = build_backend("ibmq_manhattan", seed=3)
    else:
        backend = fake_large_backend(int(num_qubits * 1.2), seed=3)
    manager = preset_pass_manager(optimization_level=2, seed=3)
    result = manager.run(qft_circuit(num_qubits), backend=backend)
    return backend, result


def main() -> None:
    max_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    sizes = [size for size in (8, 16, 32, 48, 64, 96, 128, 256)
             if size <= max_qubits]

    totals = []
    for size in sizes:
        backend, result = compile_and_time(size)
        timings = result.timing_by_pass()
        dominant = max(timings.items(), key=lambda kv: kv[1])
        totals.append({
            "qft_qubits": size,
            "target_machine_qubits": backend.num_qubits,
            "total_compile_seconds": round(result.total_seconds, 3),
            "dominant_pass": dominant[0],
            "dominant_pass_seconds": round(dominant[1], 3),
            "output_cx": result.circuit.cx_count,
        })
        print(f"compiled {size}q QFT in {result.total_seconds:.2f}s "
              f"(dominant pass: {dominant[0]})")

    print()
    print(render_table("compile-time scaling (Fig. 5 style)", totals))
    if len(totals) >= 2:
        growth = (totals[-1]["total_compile_seconds"]
                  / max(totals[0]["total_compile_seconds"], 1e-9))
        print(f"total compile time grew {growth:.0f}x from {sizes[0]}q to "
              f"{sizes[-1]}q; the paper reports a further 100-1000x blow-up "
              "toward 1000-qubit targets, dominated by layout and routing.")


if __name__ == "__main__":
    main()
