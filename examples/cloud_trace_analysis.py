"""Reproduce the paper's headline characterisation numbers on a synthetic trace.

Generates a reduced version of the two-year study trace (1500 jobs by
default — pass a number on the command line for a different scale) and
prints the statistics behind the paper's Figures 2-4 and 8-14: status
breakdown, queue-time distribution, queue:run ratios, utilisation,
calibration crossovers and the batch-size/run-time trend.

Run with:  python examples/cloud_trace_analysis.py [num_jobs]
"""

import sys

from repro.analysis import (
    batch_runtime_trend,
    crossover_statistics,
    cumulative_trials_by_month,
    queue_time_percentile_report,
    ratio_report,
    run_time_by_machine,
    status_breakdown,
    utilization_by_machine,
)
from repro.analysis.report import render_table
from repro.workloads import TraceGenerator, TraceGeneratorConfig


def main() -> None:
    total_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"generating a synthetic study trace with {total_jobs} jobs ...")
    trace = TraceGenerator(TraceGeneratorConfig(total_jobs=total_jobs,
                                                seed=7)).generate()
    summary = trace.summary()
    print(f"trace: {summary['jobs']} jobs, {summary['circuits']} circuits, "
          f"{summary['trials']:.3g} machine trials on {summary['machines']} machines\n")

    # Fig. 2 — growth and status breakdown.
    growth = cumulative_trials_by_month(trace)
    print(f"cumulative trials: {growth[-1].cumulative_trials:.3g} "
          f"(x{growth[-1].cumulative_trials / max(growth[len(growth) // 2].cumulative_trials, 1):.1f} "
          "over the second half of the window)")
    print(render_table("status breakdown (Fig. 2b)", [
        {"status": k, "fraction": v} for k, v in status_breakdown(trace).items()
    ]))

    # Fig. 3 / Fig. 4 — queueing.
    queue_report = queue_time_percentile_report(trace)
    ratios = ratio_report(trace)
    print(render_table("queuing time (Fig. 3)", [queue_report.as_dict()]))
    print(f"queue:run ratio (Fig. 4): median {ratios.median_ratio:.1f}x, "
          f"{ratios.fraction_at_or_below_one:.0%} of jobs at or below 1x, "
          f"{ratios.fraction_at_or_above_hundred:.0%} at or above 100x\n")

    # Fig. 8 — utilisation per machine (top/bottom examples).
    utilization = utilization_by_machine(trace)
    interesting = sorted(utilization.items(), key=lambda kv: kv[1].median)
    rows = [{"machine": m, "median_utilization": s.median}
            for m, s in interesting[:3] + interesting[-3:]]
    print(render_table("machine utilisation extremes (Fig. 8)", rows))

    # Fig. 12a — calibration crossovers.
    crossover = crossover_statistics(trace)
    print(f"calibration crossovers (Fig. 12a): "
          f"{crossover.crossover_fraction:.1%} of jobs executed after a newer "
          "calibration than they were compiled against\n")

    # Fig. 13 / Fig. 14 — execution times.
    run_times = run_time_by_machine(trace)
    slowest = max(run_times.items(), key=lambda kv: kv[1].median)
    print(f"slowest machine by median job run time (Fig. 13): {slowest[0]} "
          f"({slowest[1].median:.1f} min)")
    trend = batch_runtime_trend(trace)
    print(f"run time vs batch size (Fig. 14): "
          f"{trend.slope_minutes_per_circuit * 60:.1f} s per extra circuit, "
          f"correlation {trend.correlation:.2f}")


if __name__ == "__main__":
    main()
