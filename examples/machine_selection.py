"""Machine selection with a fidelity / queue-time trade-off.

Implements the workflow behind the paper's recommendations IV-D.1 and
V-E.3: compile the application for every candidate machine, use the CX
metrics + calibration data to estimate the probability of success, combine
that with the machines' expected queue times, and rank them under three
different objectives (fidelity-first, queue-first, balanced).

Run with:  python examples/machine_selection.py
"""

from repro.analysis.report import render_table
from repro.circuits import qft_echo_circuit
from repro.cloud import QuantumCloudService
from repro.devices import build_fleet
from repro.scheduling import MachineSelector, SelectionObjective

CANDIDATES = ["ibmq_athens", "ibmq_santiago", "ibmq_casablanca",
              "ibmq_guadalupe", "ibmq_toronto", "ibmq_manhattan"]


def main() -> None:
    circuit = qft_echo_circuit(4)
    fleet = build_fleet(CANDIDATES, seed=3)
    service = QuantumCloudService(fleet, seed=3)

    # Expected queue time per machine, converted from the cloud's pending-job
    # estimate at submission time (what the IBM dashboard shows a user).
    expected_waits = {
        name: 2.0 * service.pending_jobs_estimate(name, 0.0)
        for name in fleet
    }

    # Rank every machine once and show the full comparison (Fig. 7-style).
    selector = MachineSelector(SelectionObjective.BALANCED, fidelity_weight=0.6)
    choices = selector.evaluate(circuit, list(fleet.values()),
                                expected_wait_minutes=expected_waits)
    print(render_table(
        "candidate machines for the 4q QFT-echo (balanced objective)",
        [choice.as_dict() for choice in choices]))

    # Compare what each objective would pick.
    rows = []
    for objective in (SelectionObjective.FIDELITY, SelectionObjective.QUEUE,
                      SelectionObjective.BALANCED):
        best = MachineSelector(objective, fidelity_weight=0.6).select(
            circuit, list(fleet.values()), expected_wait_minutes=expected_waits)
        rows.append({
            "objective": objective.value,
            "chosen_machine": best.machine,
            "estimated_success": f"{best.estimated_success:.2%}",
            "expected_wait_minutes": round(best.expected_wait_minutes, 1),
        })
    print(render_table("what each objective chooses", rows))
    print("Trade-off: fidelity-first accepts long public-machine queues, "
          "queue-first accepts lower fidelity; balanced splits the difference.")


if __name__ == "__main__":
    main()
