"""Quickstart: compile a circuit, estimate its fidelity, and run it on the
simulated quantum cloud.

This walks the path a cloud user takes every day:

1. build a benchmark circuit,
2. compile it for a specific IBM-style machine (noise-aware),
3. estimate the probability of success from the compiled CX metrics,
4. submit a batched job to the cloud simulator and inspect the queue/run
   times it experienced,
5. scale up: regenerate a slice of the paper's study through the parallel
   sharded runner.

Run with:  python examples/quickstart.py
"""

from repro.circuits import ghz_circuit
from repro.cloud import Job, QuantumCloudService, circuit_spec_from_circuit
from repro.core.units import format_duration
from repro.devices import build_fleet
from repro.fidelity import estimate_success_probability, measure_probability_of_success
from repro.runner import run_study
from repro.transpiler import transpile


def main() -> None:
    # --- 1. a small benchmark circuit --------------------------------------------
    circuit = ghz_circuit(4)
    print(f"logical circuit: {circuit}")

    # --- 2. compile it for a real machine of the study ---------------------------
    fleet = build_fleet(["ibmq_athens", "ibmq_casablanca", "ibmq_toronto"], seed=1)
    backend = fleet["ibmq_casablanca"]
    result = transpile(circuit, backend, optimization_level=3)
    compiled = result.circuit
    print(f"compiled for {backend.name}: cx={compiled.cx_count}, "
          f"depth={compiled.depth()}, compile time={result.total_seconds * 1e3:.1f} ms")

    # --- 3. estimate and measure the probability of success ----------------------
    calibration = backend.calibration_at(0.0)
    estimate = estimate_success_probability(compiled, calibration)
    measured = measure_probability_of_success(circuit, compiled, calibration,
                                              shots=2048)
    print(f"estimated success probability: {estimate.probability:.2%} "
          f"(CX-Total={estimate.cx_metrics.cx_total}, "
          f"CX-Depth={estimate.cx_metrics.cx_depth})")
    print(f"measured POS from the noisy sampler: {measured:.2%}")

    # --- 4. submit a batched job to the simulated cloud --------------------------
    service = QuantumCloudService(fleet, seed=1)
    spec = circuit_spec_from_circuit(compiled, family="ghz")
    job = Job(provider="academic-hub", backend_name=backend.name,
              circuits=[spec] * 25, shots=1024, submit_time=0.0,
              compile_seconds=result.total_seconds)
    service.submit(job)
    service.drain()

    print(f"job {job.job_id} finished with status {job.status.value}")
    print(f"  queued for {format_duration(job.queue_seconds or 0)} "
          f"({job.pending_ahead} jobs were pending ahead)")
    if job.run_seconds:
        print(f"  ran for {format_duration(job.run_seconds)} "
              f"({job.batch_size} circuits x {job.shots} shots)")
        print(f"  queue:run ratio = {job.queue_seconds / job.run_seconds:.1f}x")

    # --- 5. a miniature study through the parallel sharded runner ----------------
    result = run_study(total_jobs=120, months=3, seed=7, use_cache=False)
    summary = result.trace.summary()
    print(f"\nmini study via the sharded runner ({result.workers} workers, "
          f"{result.total_seconds:.1f}s): {summary['jobs']} jobs, "
          f"{summary['circuits']} circuits, {summary['trials']:.3g} trials "
          f"on {summary['machines']} machines")
    print("full scale:  python -m repro run-study --jobs 6000  "
          "(then `python -m repro figures`)")


if __name__ == "__main__":
    main()
