"""Tests for repro.circuits.library."""

import pytest

from repro.circuits.library import (
    CIRCUIT_FAMILIES,
    bernstein_vazirani_circuit,
    build_circuit,
    bv_circuit,
    ghz_circuit,
    qaoa_maxcut_circuit,
    qft_circuit,
    random_circuit,
    vqe_ansatz_circuit,
)
from repro.core.exceptions import CircuitError
from repro.core.rng import RandomSource


class TestQft:
    def test_gate_structure(self):
        circuit = qft_circuit(4, measure=False)
        counts = circuit.gate_counts()
        assert counts["h"] == 4
        assert counts["cp"] == 6          # n(n-1)/2 controlled phases
        assert counts["swap"] == 2        # floor(n/2) bit-reversal swaps

    def test_measured_by_default(self):
        assert qft_circuit(3).count_measurements() == 3

    def test_without_swaps(self):
        circuit = qft_circuit(4, include_swaps=False, measure=False)
        assert "swap" not in circuit.gate_counts()

    def test_single_qubit(self):
        circuit = qft_circuit(1, measure=False)
        assert circuit.gate_counts() == {"h": 1}

    def test_invalid_size(self):
        with pytest.raises(CircuitError):
            qft_circuit(0)


class TestGhz:
    def test_structure(self):
        circuit = ghz_circuit(5, measure=False)
        counts = circuit.gate_counts()
        assert counts["h"] == 1
        assert counts["cx"] == 4

    def test_cx_chain_is_nearest_neighbour_in_logical_indices(self):
        circuit = ghz_circuit(4, measure=False)
        cx_pairs = [i.qubits for i in circuit.two_qubit_instructions()]
        assert cx_pairs == [(0, 1), (1, 2), (2, 3)]


class TestBernsteinVazirani:
    def test_secret_encoded_as_cx_count(self):
        circuit = bernstein_vazirani_circuit("1011", measure=False)
        assert circuit.cx_count == 3
        assert circuit.num_qubits == 5  # 4 data + 1 ancilla

    def test_invalid_secret(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit("10a1")
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit("")

    def test_bv_width_helper(self):
        circuit = bv_circuit(5, rng=RandomSource(1))
        assert circuit.num_qubits == 5
        assert circuit.cx_count >= 1

    def test_bv_minimum_width(self):
        with pytest.raises(CircuitError):
            bv_circuit(1)


class TestQaoaAndVqe:
    def test_qaoa_ring_structure(self):
        circuit = qaoa_maxcut_circuit(4, num_layers=2, measure=False)
        counts = circuit.gate_counts()
        assert counts["h"] == 4
        assert counts["rzz"] == 8   # 4 edges x 2 layers
        assert counts["rx"] == 8

    def test_qaoa_custom_edges_validated(self):
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(3, edges=[(0, 3)])
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(3, edges=[(1, 1)])

    def test_vqe_parameter_count_enforced(self):
        with pytest.raises(CircuitError):
            vqe_ansatz_circuit(3, num_layers=2, parameters=[0.1, 0.2])

    def test_vqe_structure(self):
        circuit = vqe_ansatz_circuit(3, num_layers=2, measure=False)
        counts = circuit.gate_counts()
        assert counts["cx"] == 4          # (n-1) per layer
        assert counts["ry"] == 9          # n per rotation layer x (layers+1)
        assert counts["rz"] == 9


class TestRandomCircuit:
    def test_deterministic_for_seed(self):
        a = random_circuit(4, 6, rng=RandomSource(9))
        b = random_circuit(4, 6, rng=RandomSource(9))
        assert a == b

    def test_depth_scales_with_requested_layers(self):
        shallow = random_circuit(4, 2, rng=RandomSource(1), measure=False)
        deep = random_circuit(4, 12, rng=RandomSource(1), measure=False)
        assert deep.depth() > shallow.depth()

    def test_invalid_depth(self):
        with pytest.raises(CircuitError):
            random_circuit(2, -1)


class TestBuildCircuit:
    @pytest.mark.parametrize("family", sorted(CIRCUIT_FAMILIES))
    def test_every_family_builds(self, family):
        circuit = build_circuit(family, 4, rng=RandomSource(2))
        assert circuit.num_qubits >= 2
        assert circuit.metadata["family"] == family

    def test_unknown_family_rejected(self):
        with pytest.raises(CircuitError):
            build_circuit("does-not-exist", 4)
