"""Tests for the equivalence-class transpile cache and rank-mode studies.

The load-bearing properties:

* structural/class fingerprints are pure — stable across processes and
  hash seeds (no ``id()`` or dict-order leakage into the bytes);
* the :class:`~repro.transpiler.cache.TranspileCache` round-trips
  summaries exactly (float-exact JSON), treats corruption as a miss, and
  prunes LRU-first;
* rank-mode studies are byte-identical for any worker / shard /
  transpile-shard count, with the cache cold, warm, or disabled — the
  cache and the pool only change *where* a transpile runs, never what
  the ranking sees.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.circuits.library import ghz_circuit
from repro.core.exceptions import ReproError, ScenarioError
from repro.devices import build_backend
from repro.runner.executor import run_study
from repro.runner.sharding import plan_transpile_shards
from repro.scenarios import PolicySwap, Scenario
from repro.scheduling.policies import (
    MachineSelector,
    SelectionObjective,
    rank_candidates,
    rank_summaries,
)
from repro.transpiler.cache import (
    DEFAULT_RANK_SEED,
    TranspileCache,
    summarise_transpile,
    transpile_cache_key,
)
from repro.workloads.circuit_metrics import (
    class_fingerprint,
    representative_circuit,
    structural_fingerprint,
)
from repro.workloads.generator import ScenarioKnobs, TraceGeneratorConfig
from repro.workloads.transpile_classes import (
    ClassRankTable,
    compute_class_summary,
)

_FP_SNIPPET = """\
import sys
sys.path.insert(0, {src!r})
from repro.workloads.circuit_metrics import class_fingerprint
from repro.transpiler.cache import backend_fingerprint
from repro.devices import build_backend
print(class_fingerprint("qft", 5))
print(class_fingerprint("random", 9))
print(backend_fingerprint(build_backend("ibmq_athens", seed=3)))
"""


def _rank_config(jobs=60, months=3, objective="balanced"):
    return TraceGeneratorConfig(
        total_jobs=jobs, months=months, seed=7,
        scenario=ScenarioKnobs(ranking_objective=objective))


def _trace_bytes(result):
    columns = sorted(result.trace.column_names) \
        if hasattr(result.trace, "column_names") else None
    if columns is None:
        columns = ["job_id", "machine", "user_policy", "submit_time",
                   "start_time", "end_time", "status"]
    return [(name, list(result.trace.column(name))) for name in columns]


class TestFingerprints:
    def test_structural_fingerprint_abstracts_parameters(self):
        # Two widths of the same family differ; the same build is stable.
        assert class_fingerprint("qft", 4) != class_fingerprint("qft", 5)
        assert class_fingerprint("qft", 4) == class_fingerprint("qft", 4)

    def test_fingerprints_stable_across_processes(self):
        """No id()/hash-seed/dict-order leakage into the fingerprints."""
        src = str(Path(__file__).resolve().parent.parent / "src")
        snippet = _FP_SNIPPET.format(src=src)
        runs = [
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            ).stdout.splitlines()
            for seed in ("0", "4242")
        ]
        assert runs[0] == runs[1]
        local = [class_fingerprint("qft", 5), class_fingerprint("random", 9)]
        assert runs[0][:2] == local

    def test_structural_fingerprint_matches_metrics_stream(self):
        circuit = representative_circuit("qft", 5)
        assert structural_fingerprint(circuit) == class_fingerprint("qft", 5)


class TestTranspileCache:
    def test_round_trip_is_exact(self, tmp_path):
        backend = build_backend("ibmq_athens", seed=3)
        summary = compute_class_summary("qft", 4, backend, level=3)
        cache = TranspileCache(tmp_path)
        key = transpile_cache_key(summary.class_fingerprint,
                                  summary.backend_fingerprint,
                                  summary.level, summary.seed)
        cache.put(key, summary)
        restored = cache.get(key)
        # Frozen dataclass equality covers every float bit-for-bit: JSON
        # round-trips repr-exact floats.
        assert restored == summary
        assert cache.stats()["hits"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TranspileCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path_for("deadbeef").write_text("{not json")
        assert cache.get("deadbeef") is None
        assert cache.stats()["misses"] == 1

    def test_prune_is_lru(self, tmp_path):
        import os

        backend = build_backend("ibmq_athens", seed=3)
        cache = TranspileCache(tmp_path)
        keys = []
        for width in (2, 3, 4):
            summary = compute_class_summary("ghz", width, backend, level=1)
            key = transpile_cache_key(summary.class_fingerprint,
                                      summary.backend_fingerprint, 1,
                                      summary.seed)
            cache.put(key, summary)
            keys.append(key)
        # Pin distinct mtimes (puts land within one filesystem tick),
        # making the first entry the most recently used.
        for age, key in enumerate(keys):
            os.utime(cache.path_for(key), (1000.0 - age, 1000.0 - age))
        evicted = cache.prune(cache.entries()[-1].size_bytes * 2)
        assert evicted
        survivors = {entry.key for entry in cache.entries()}
        assert keys[0] in survivors

    def test_cache_key_separates_levels(self):
        assert transpile_cache_key("a" * 24, "b" * 24, 2) \
            != transpile_cache_key("a" * 24, "b" * 24, 3)


class TestRanking:
    def test_rank_candidates_orders_by_score_then_name(self):
        choices = rank_candidates([
            ("m_b", 0.9, 10, 5),
            ("m_a", 0.9, 12, 6),
            ("m_c", 0.1, 3, 2),
        ])
        assert [c.machine for c in choices] == ["m_a", "m_b", "m_c"]

    def test_rank_candidates_rejects_empty(self):
        with pytest.raises(ReproError):
            rank_candidates([])

    def test_cached_selector_matches_live_selector(self, tmp_path):
        backends = [build_backend(name, seed=2)
                    for name in ("ibmq_athens", "ibmq_casablanca")]
        circuit = ghz_circuit(3)
        live = MachineSelector(SelectionObjective.FIDELITY)
        cached = MachineSelector(SelectionObjective.FIDELITY,
                                 cache=TranspileCache(tmp_path))
        expected = live.evaluate(circuit, backends)
        for _ in range(2):  # second pass runs fully from the cache
            choices = cached.evaluate(circuit, backends)
            assert [(c.machine, c.estimated_success, c.score)
                    for c in choices] \
                == [(c.machine, c.estimated_success, c.score)
                    for c in expected]

    def test_rank_summaries_equals_rank_candidates(self):
        backend = build_backend("ibmq_athens", seed=3)
        summary = compute_class_summary("ghz", 3, backend, level=2)
        by_summary = rank_summaries([summary])
        by_tuple = rank_candidates([(summary.machine,
                                     summary.estimated_success,
                                     summary.cx_total, summary.cx_depth)])
        assert by_summary == by_tuple

    def test_sparse_table_selects_like_complete(self):
        backends = [build_backend(name, seed=2)
                    for name in ("ibmq_athens", "ibmq_casablanca")]
        summaries = [compute_class_summary("ghz", 3, backend, level=3)
                     for backend in backends]
        complete = ClassRankTable(objective="balanced", level=3,
                                  summaries=summaries)
        sparse = ClassRankTable(objective="balanced", level=3)
        assert complete.select("ghz", 3, backends).name \
            == sparse.select("ghz", 3, backends).name
        assert sparse.inline_computes == len(backends)


class TestTranspileSharding:
    def test_round_robin_partition(self):
        pairs = [("qft", w, "ibmq_athens") for w in range(2, 12)]
        shards = plan_transpile_shards(pairs, 3)
        assert sorted(p for shard in shards for p in shard.pairs) \
            == sorted(pairs)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_shards_dropped(self):
        pairs = [("qft", 3, "ibmq_athens")]
        assert len(plan_transpile_shards(pairs, 4)) == 1


class TestRankStudyDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("rank-cache")
        result = run_study(config=_rank_config(), workers=1,
                           cache_dir=root)
        return root, result

    def test_cold_run_reports_amortisation(self, reference):
        _, result = reference
        stats = result.transpile
        assert stats["cold"] == stats["pairs"] > 0
        # Even at this tiny scale each class serves several jobs; the
        # >=10x study-scale dedup target lives in bench_transpile.py.
        assert stats["probes"] > stats["pairs"] >= stats["classes"]
        assert result.trace.metadata.get("seed") == 7

    def test_warm_cache_is_byte_identical(self, reference):
        root, cold = reference
        for path in Path(root).glob("trace-*"):
            shutil.rmtree(path) if path.is_dir() else path.unlink()
        warm = run_study(config=_rank_config(), workers=1, cache_dir=root)
        assert warm.transpile["cold"] == 0
        assert warm.transpile["warm"] == cold.transpile["pairs"]
        assert _trace_bytes(warm) == _trace_bytes(cold)

    def test_cache_off_and_sharded_are_byte_identical(self, reference):
        _, cold = reference
        for workers, shards, transpile_workers in ((1, 3, 2), (2, 1, 3)):
            rerun = run_study(config=_rank_config(), workers=workers,
                              num_shards=shards,
                              transpile_workers=transpile_workers,
                              use_cache=False)
            assert _trace_bytes(rerun) == _trace_bytes(cold)

    def test_rank_policy_lands_in_the_trace(self, reference):
        _, result = reference
        assert set(result.trace.column("user_policy")) == {"rank-balanced"}


class TestTranspileSpans:
    def test_rank_study_emits_class_and_pass_spans(self):
        from repro.telemetry import Tracer, set_tracer

        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            run_study(config=_rank_config(jobs=20, months=1), workers=1,
                      use_cache=False)
        finally:
            set_tracer(previous)
        spans = tracer.spans()
        names = [span["name"] for span in spans]
        assert "study.transpile" in names
        class_spans = [s for s in spans if s["name"] == "transpile.class"]
        assert class_spans
        pass_spans = [s for s in spans
                      if s["name"].startswith("transpile.pass.")]
        assert pass_spans
        # Pass spans replay inside their class span's window.
        eps = 1e-6
        for class_span in class_spans:
            end = class_span["start"] + class_span["duration"]
            children = [
                s for s in pass_spans
                if s["args"].get("family") == class_span["args"]["family"]
                and s["args"].get("width") == class_span["args"]["width"]
                and s["args"].get("machine")
                == class_span["args"]["machine"]
            ]
            assert children
            for child in children:
                assert child["start"] >= class_span["start"] - eps
                assert child["start"] + child["duration"] <= end + eps
        tracer.chrome_trace()  # must export cleanly


class TestPolicySwapRankMode:
    def test_rank_mode_sets_ranking_knobs(self):
        swap = PolicySwap(policy="fidelity", mode="rank", level=2)
        config = swap.apply(TraceGeneratorConfig(total_jobs=10, months=1))
        assert config.scenario.ranking_objective == "fidelity"
        assert config.scenario.ranking_level == 2
        assert config.scenario.forced_policy is None

    def test_trace_mode_unchanged(self):
        config = PolicySwap(policy="queue").apply(
            TraceGeneratorConfig(total_jobs=10, months=1))
        assert config.scenario.forced_policy == "least_queue"
        assert config.scenario.ranking_objective is None

    def test_rank_mode_rejects_user_policies(self):
        with pytest.raises(ScenarioError):
            PolicySwap(policy="least_queue", mode="rank").apply(
                TraceGeneratorConfig(total_jobs=10, months=1))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ScenarioError):
            PolicySwap(policy="balanced", mode="compile").apply(
                TraceGeneratorConfig(total_jobs=10, months=1))

    def test_rank_scenarios_have_distinct_fingerprints(self):
        from repro.runner.cache import config_fingerprint

        base = TraceGeneratorConfig(total_jobs=10, months=1)
        scenarios = [
            Scenario("a", perturbations=(PolicySwap(policy="balanced"),)),
            Scenario("b", perturbations=(
                PolicySwap(policy="balanced", mode="rank"),)),
            Scenario("c", perturbations=(
                PolicySwap(policy="fidelity", mode="rank"),)),
        ]
        prints = {config_fingerprint(s.apply_to(base)) for s in scenarios}
        assert len(prints) == 3

    def test_default_seed_is_shared(self):
        # The table and the selector must agree on the pinned seed, or the
        # cached and live paths would key different entries.
        assert ClassRankTable().seed == DEFAULT_RANK_SEED
        assert summarise_transpile.__defaults__[0] == DEFAULT_RANK_SEED
