"""Tests for repro.circuits.dag."""


from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.library import qft_circuit


class TestCircuitDAG:
    def test_node_count_matches_instructions(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).measure_all()
        dag = CircuitDAG(circuit)
        assert len(dag) == len(circuit)

    def test_dependencies_follow_wires(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        dag = CircuitDAG(circuit)
        # cx (index 1) depends on h (index 0); x (index 2) depends on cx.
        assert [n.index for n in dag.predecessors(1)] == [0]
        assert [n.index for n in dag.predecessors(2)] == [1]

    def test_front_layer(self):
        circuit = QuantumCircuit(3).h(0).h(1).cx(0, 1).x(2)
        dag = CircuitDAG(circuit)
        front = {node.index for node in dag.front_layer()}
        assert front == {0, 1, 3}

    def test_topological_order_respects_dependencies(self):
        circuit = qft_circuit(4)
        dag = CircuitDAG(circuit)
        position = {node.index: order
                    for order, node in enumerate(dag.topological_nodes())}
        for node in dag.nodes():
            for successor in dag.successors(node.index):
                assert position[node.index] < position[successor.index]

    def test_longest_path_matches_circuit_depth(self):
        circuit = qft_circuit(5)
        dag = CircuitDAG(circuit)
        assert dag.longest_path_length() == circuit.depth()
        assert dag.longest_path_length(two_qubit_only=True) == circuit.cx_depth

    def test_layers_partition_all_nodes(self):
        circuit = qft_circuit(3)
        dag = CircuitDAG(circuit)
        layers = dag.layers()
        flattened = [node.index for layer in layers for node in layer]
        assert sorted(flattened) == list(range(len(circuit)))

    def test_layers_are_independent_within_layer(self):
        circuit = QuantumCircuit(4).h(0).h(1).cx(0, 1).cx(2, 3)
        dag = CircuitDAG(circuit)
        first_layer = {n.index for n in dag.layers()[0]}
        assert 2 not in first_layer  # cx(0,1) depends on the two h gates
        assert 3 in first_layer      # cx(2,3) has no dependencies

    def test_to_circuit_round_trip_preserves_semantics(self):
        circuit = qft_circuit(4)
        rebuilt = CircuitDAG(circuit).to_circuit()
        assert rebuilt.gate_counts() == circuit.gate_counts()
        assert rebuilt.depth() == circuit.depth()

    def test_validate_passes_for_well_formed_circuit(self):
        CircuitDAG(QuantumCircuit(2).h(0).cx(0, 1)).validate()

    def test_empty_circuit(self):
        dag = CircuitDAG(QuantumCircuit(2))
        assert len(dag) == 0
        assert dag.longest_path_length() == 0
        assert dag.layers() == []
