"""Tests for the per-figure analyses (jobs, queuing, machines, execution,
calibration)."""

import numpy as np
import pytest

from repro.analysis.calibration import crossover_statistics, layout_drift_between_epochs
from repro.analysis.execution import (
    batch_runtime_trend,
    run_time_by_batch_size,
    run_time_by_machine,
)
from repro.analysis.jobs import (
    cumulative_trials_by_month,
    jobs_per_machine,
    status_breakdown,
    wasted_execution_fraction,
)
from repro.analysis.machines import (
    bisection_bandwidth_table,
    machine_job_share,
    pending_jobs_by_machine,
    utilization_by_machine,
)
from repro.analysis.queuing import (
    per_circuit_queue_by_batch_size,
    queue_time_by_batch_size,
    queue_time_by_machine,
    queue_time_percentile_report,
    queue_to_run_ratios,
    ratio_report,
    sorted_queue_times_minutes,
)
from repro.circuits.library import qft_circuit
from repro.core.exceptions import AnalysisError
from repro.core.units import DAY_SECONDS
from repro.workloads.trace import TraceDataset


class TestJobTrends:
    def test_cumulative_trials_monotonic(self, medium_trace):
        """Fig. 2a: the cumulative trial count only grows."""
        series = cumulative_trials_by_month(medium_trace)
        values = [row.cumulative_trials for row in series]
        assert values == sorted(values)
        assert values[-1] == medium_trace.total_trials()

    def test_trials_accelerate(self, medium_trace):
        series = cumulative_trials_by_month(medium_trace)
        halfway = series[len(series) // 2].cumulative_trials
        assert series[-1].cumulative_trials > 2 * halfway

    def test_status_breakdown_sums_to_one(self, medium_trace):
        breakdown = status_breakdown(medium_trace)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["DONE"] > 0.85

    def test_wasted_fraction_matches_breakdown(self, medium_trace):
        breakdown = status_breakdown(medium_trace)
        assert wasted_execution_fraction(medium_trace) == pytest.approx(
            1.0 - breakdown["DONE"])

    def test_jobs_per_machine_counts(self, medium_trace):
        counts = jobs_per_machine(medium_trace)
        assert sum(counts.values()) == len(medium_trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            status_breakdown(TraceDataset())


class TestQueueAnalyses:
    def test_sorted_queue_times_sorted_and_expanded(self, medium_trace):
        per_circuit = sorted_queue_times_minutes(medium_trace, per_circuit=True)
        per_job = sorted_queue_times_minutes(medium_trace, per_circuit=False)
        assert len(per_circuit) > len(per_job)
        assert np.all(np.diff(per_circuit) >= 0)

    def test_queue_report_shape(self, medium_trace):
        """Fig. 3 headline numbers land in the paper's qualitative ranges."""
        report = queue_time_percentile_report(medium_trace)
        assert 0.0 <= report.fraction_under_one_minute <= 0.6
        assert report.median_minutes > 5.0
        assert report.fraction_over_two_hours > 0.1
        assert report.fraction_over_one_day < 0.5

    def test_ratio_report_shape(self, medium_trace):
        """Fig. 4: queue dominates execution for most jobs."""
        report = ratio_report(medium_trace)
        assert report.median_ratio > 1.0
        assert 0.0 < report.fraction_at_or_below_one < 0.7
        ratios = queue_to_run_ratios(medium_trace)
        assert np.all(np.diff(ratios) >= 0)

    def test_queue_time_by_machine_covers_machines(self, medium_trace):
        distribution = queue_time_by_machine(medium_trace)
        assert set(distribution) <= set(medium_trace.machines())
        assert all(summary.count > 0 for summary in distribution.values())

    def test_public_machines_queue_longer(self, medium_trace):
        """Fig. 10: public machines show longer queues than privileged ones."""
        distribution = queue_time_by_machine(medium_trace)
        public = [s.median for m, s in distribution.items()
                  if medium_trace.for_machine(m)[0].access == "public"
                  and "simulator" not in m]
        privileged = [s.median for m, s in distribution.items()
                      if medium_trace.for_machine(m)[0].access == "privileged"]
        if public and privileged:
            assert np.median(public) > np.median(privileged)

    def test_per_circuit_queue_decreases_with_batch(self, medium_trace):
        """Fig. 11: larger batches amortise queue time per circuit."""
        per_circuit = per_circuit_queue_by_batch_size(medium_trace, bin_width=300)
        bins = sorted(per_circuit)
        if len(bins) >= 2:
            assert per_circuit[bins[-1]] < per_circuit[bins[0]]

    def test_queue_by_batch_size_bins(self, medium_trace):
        binned = queue_time_by_batch_size(medium_trace, bin_width=300)
        assert all(low < high for (low, high) in binned)


class TestMachineAnalyses:
    def test_bisection_table_matches_paper_shape(self, fleet):
        """Fig. 6: bisection bandwidth stays tiny even on 65-qubit machines."""
        rows = bisection_bandwidth_table(fleet)
        by_name = {row.machine: row for row in rows}
        assert by_name["ibmq_manhattan"].bisection_bandwidth <= 5
        assert by_name["ibmq_athens"].bisection_bandwidth == 1
        mesh_equivalent = 8  # 64-node classical mesh
        assert by_name["ibmq_manhattan"].bisection_bandwidth < mesh_equivalent
        assert rows == sorted(rows, key=lambda r: (r.num_qubits, r.machine))

    def test_utilization_by_machine_shape(self, medium_trace):
        """Fig. 8: small machines are highly utilised, large ones are not."""
        utilization = utilization_by_machine(medium_trace)
        small = [s.median for m, s in utilization.items()
                 if medium_trace.for_machine(m)[0].machine_qubits == 5]
        large = [s.median for m, s in utilization.items()
                 if medium_trace.for_machine(m)[0].machine_qubits >= 27]
        if small and large:
            assert np.mean(small) > 2 * np.mean(large)
        assert all(0 <= s.maximum <= 1.0 for s in utilization.values())

    def test_pending_jobs_public_dominate(self, fleet):
        """Fig. 9: the busiest machine in each size class is public."""
        pending = pending_jobs_by_machine(fleet, window_start=600 * DAY_SECONDS,
                                          window_days=7.0, samples=16)
        five_qubit_public = [pending[name] for name, b in fleet.items()
                             if b.num_qubits == 5 and b.is_public]
        five_qubit_privileged = [pending[name] for name, b in fleet.items()
                                 if b.num_qubits == 5 and not b.is_public]
        assert max(five_qubit_public) > 10 * max(five_qubit_privileged)

    def test_machine_job_share_sums_to_one(self, medium_trace):
        shares = machine_job_share(medium_trace)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_pending_jobs_requires_samples(self, fleet):
        with pytest.raises(AnalysisError):
            pending_jobs_by_machine(fleet, window_start=0.0, samples=0)


class TestExecutionAnalyses:
    def test_run_time_by_machine(self, medium_trace):
        per_job = run_time_by_machine(medium_trace)
        per_circuit = run_time_by_machine(medium_trace, per_circuit=True)
        assert set(per_circuit) == set(per_job)
        for machine in per_job:
            assert per_circuit[machine].median <= per_job[machine].median + 1e-9

    def test_run_time_grows_with_batch(self, medium_trace):
        """Fig. 14: job runtimes increase proportionally with batch size."""
        trend = batch_runtime_trend(medium_trace)
        assert trend.slope_minutes_per_circuit > 0
        assert trend.correlation > 0.6
        assert trend.predict_minutes(800) > trend.predict_minutes(10)

    def test_run_time_by_batch_bins(self, medium_trace):
        binned = run_time_by_batch_size(medium_trace, bin_width=300)
        medians = [binned[key].median for key in sorted(binned)]
        assert medians[-1] > medians[0]


class TestCalibrationAnalyses:
    def test_crossover_fraction_in_paper_range(self, medium_trace):
        """Fig. 12a: a substantial minority of jobs cross a calibration."""
        stats = crossover_statistics(medium_trace)
        assert 0.05 < stats.crossover_fraction < 0.5
        assert stats.intra_calibration_fraction == pytest.approx(
            1.0 - stats.crossover_fraction)

    def test_layout_drift_between_epochs(self, casablanca):
        """Fig. 12b: noise-aware layouts differ across calibration epochs."""
        drift = layout_drift_between_epochs(qft_circuit(4), casablanca,
                                            epoch_a=0, epoch_b=1)
        assert drift.machine == casablanca.name
        assert set(drift.layout_a) == {0, 1, 2, 3}
        # The mapping typically moves; at minimum the structure is reported.
        assert drift.moved_qubits >= 0
        assert drift.cx_count_a > 0 and drift.cx_count_b > 0

    def test_layout_drift_same_epoch_rejected(self, casablanca):
        with pytest.raises(AnalysisError):
            layout_drift_between_epochs(qft_circuit(3), casablanca, 1, 1)
