"""Unit tests for the columnar TraceDataset primitives.

Focus: typed column access (including optional-valued columns with NaN
sentinels), vectorised filter/group-by, categorical vocabularies, the lazy
JobRecord row view, and the npz persistence layer.
"""

import numpy as np
import pytest

from repro.core.exceptions import WorkloadError
from repro.workloads.trace import JobRecord, TraceDataset


def _record(job_id="job-x", machine="ibmq_athens", qubits=5, status="DONE",
            batch=10, shots=1024, queue=600.0, run=120.0, width=3, month=2,
            pending=5, crossed=False) -> JobRecord:
    start = None if queue is None else 1000.0 + queue
    end = None if queue is None or run is None else start + run
    return JobRecord(
        job_id=job_id, provider="open", access="public", machine=machine,
        machine_qubits=qubits, month_index=month, batch_size=batch,
        shots=shots, circuit_family="qft", circuit_width=width,
        circuit_depth=20, circuit_gates=40, circuit_cx=12, circuit_cx_depth=8,
        memory_slots=width, submit_time=1000.0, start_time=start,
        end_time=end, status=status, queue_seconds=queue, run_seconds=run,
        compile_seconds=0.5, pending_ahead=pending,
        crossed_calibration=crossed,
    )


@pytest.fixture
def mixed_trace():
    """Four rows mixing machines, statuses and missing optionals."""
    return TraceDataset.from_records([
        _record(job_id="a", machine="ibmq_athens", queue=60.0, run=30.0),
        _record(job_id="b", machine="ibmq_rome", status="ERROR",
                queue=120.0, run=0.0),
        _record(job_id="c", machine="ibmq_athens", status="CANCELLED",
                queue=None, run=None),
        _record(job_id="d", machine="ibmq_rome", queue=240.0, run=60.0,
                month=4),
    ], metadata={"seed": 9})


class TestTypedColumns:
    def test_values_dtypes(self, mixed_trace):
        assert mixed_trace.values("batch_size").dtype == np.int64
        assert mixed_trace.values("submit_time").dtype == np.float64
        assert mixed_trace.values("crossed_calibration").dtype == np.bool_
        machines = mixed_trace.values("machine")
        assert machines.dtype.kind == "U"
        assert machines.tolist() == ["ibmq_athens", "ibmq_rome",
                                     "ibmq_athens", "ibmq_rome"]

    def test_optional_column_uses_nan_sentinel(self, mixed_trace):
        queue = mixed_trace.values("queue_seconds")
        assert queue.dtype == np.float64
        assert np.isnan(queue[2])
        assert queue[0] == 60.0

    def test_column_list_restores_none(self, mixed_trace):
        assert mixed_trace.column("queue_seconds") == [60.0, 120.0, None,
                                                       240.0]
        assert mixed_trace.column("run_minutes") == [0.5, 0.0, None, 1.0]
        assert all(isinstance(v, int)
                   for v in mixed_trace.column("batch_size"))

    def test_numeric_column_drops_missing(self, mixed_trace):
        queue = mixed_trace.numeric_column("queue_seconds")
        assert queue.tolist() == [60.0, 120.0, 240.0]
        kept = mixed_trace.numeric_column("queue_seconds", drop_none=False)
        assert kept.size == 4 and np.isnan(kept[2])

    def test_derived_ratio_column_handles_invalid_rows(self, mixed_trace):
        ratios = mixed_trace.values("queue_to_run_ratio")
        # row b ran for 0 seconds, row c never ran: both undefined.
        assert ratios[0] == pytest.approx(2.0)
        assert np.isnan(ratios[1]) and np.isnan(ratios[2])
        assert ratios[3] == pytest.approx(4.0)

    def test_unknown_column_rejected(self, mixed_trace):
        with pytest.raises(WorkloadError):
            mixed_trace.values("not_a_column")
        with pytest.raises(WorkloadError):
            mixed_trace.column("not_a_column")


class TestSelection:
    def test_where_mask(self, mixed_trace):
        subset = mixed_trace.where(mixed_trace.values("batch_size") >= 10)
        assert len(subset) == 4
        subset = mixed_trace.where(
            ~np.isnan(mixed_trace.values("run_seconds")))
        assert [r.job_id for r in subset] == ["a", "b", "d"]
        assert subset.metadata == {"seed": 9}

    def test_where_rejects_bad_mask(self, mixed_trace):
        with pytest.raises(WorkloadError):
            mixed_trace.where(np.asarray([True, False]))

    def test_take_preserves_order(self, mixed_trace):
        subset = mixed_trace.take([3, 0])
        assert [r.job_id for r in subset] == ["d", "a"]

    def test_mask_equal_on_categorical(self, mixed_trace):
        mask = mixed_trace.mask_equal("machine", "ibmq_rome")
        assert mask.tolist() == [False, True, False, True]
        assert not mixed_trace.mask_equal("machine", "missing").any()

    def test_completed_requires_positive_run(self, mixed_trace):
        completed = mixed_trace.completed()
        assert [r.job_id for r in completed] == ["a", "d"]

    def test_filter_predicate_compatibility(self, mixed_trace):
        subset = mixed_trace.filter(lambda r: r.machine == "ibmq_athens")
        assert [r.job_id for r in subset] == ["a", "c"]


class TestGroupsAndCounts:
    def test_group_by_machine_sorted_keys(self, mixed_trace):
        groups = mixed_trace.group_by_machine()
        assert list(groups) == ["ibmq_athens", "ibmq_rome"]
        assert [r.job_id for r in groups["ibmq_rome"]] == ["b", "d"]

    def test_group_by_month_integer_keys(self, mixed_trace):
        groups = mixed_trace.group_by_month()
        assert list(groups) == [2, 4]
        assert all(isinstance(key, int) for key in groups)

    def test_subset_vocabulary_reports_present_values_only(self, mixed_trace):
        athens = mixed_trace.for_machine("ibmq_athens")
        assert athens.machines() == ["ibmq_athens"]
        assert set(athens.status_counts()) == {"DONE", "CANCELLED"}

    def test_value_counts(self, mixed_trace):
        assert mixed_trace.value_counts("machine") == {
            "ibmq_athens": 2, "ibmq_rome": 2}
        assert mixed_trace.status_counts() == {
            "DONE": 2, "ERROR": 1, "CANCELLED": 1}


class TestRowView:
    def test_indexing_and_slicing(self, mixed_trace):
        assert mixed_trace[0].job_id == "a"
        assert mixed_trace[-1].job_id == "d"
        assert [r.job_id for r in mixed_trace[1:3]] == ["b", "c"]
        with pytest.raises(IndexError):
            mixed_trace[4]

    def test_row_view_restores_python_types(self, mixed_trace):
        record = mixed_trace[2]
        assert record.queue_seconds is None
        assert record.run_seconds is None
        assert isinstance(record.batch_size, int)
        assert isinstance(record.crossed_calibration, bool)
        assert isinstance(record.machine, str)

    def test_append_and_extend(self, mixed_trace):
        mixed_trace.append(_record(job_id="e", machine="ibmq_lima",
                                   status="DONE"))
        assert len(mixed_trace) == 5
        assert mixed_trace[-1].machine == "ibmq_lima"
        assert "ibmq_lima" in mixed_trace.machines()
        # pre-existing rows keep their values after the vocabulary grows
        assert mixed_trace[0].machine == "ibmq_athens"

    def test_empty_dataset(self):
        empty = TraceDataset()
        assert len(empty) == 0
        assert empty.machines() == []
        assert empty.records == []
        assert empty.summary()["jobs"] == 0


class TestNpzPersistence:
    def test_npz_round_trip_with_missing_values(self, mixed_trace, tmp_path):
        path = tmp_path / "trace.npz"
        mixed_trace.to_npz(path)
        restored = TraceDataset.from_npz(path)
        assert restored.records == mixed_trace.records
        assert restored.metadata == {"seed": 9}
        assert restored[2].queue_seconds is None

    def test_save_load_dispatch_by_suffix(self, mixed_trace, tmp_path):
        for name in ("trace.npz", "trace.json", "trace.csv"):
            path = tmp_path / name
            mixed_trace.save(path)
            restored = TraceDataset.load(path)
            assert restored.records == mixed_trace.records

    def test_schema_mismatch_rejected(self, mixed_trace, tmp_path):
        import json
        import zipfile

        path = tmp_path / "trace.npz"
        mixed_trace.to_npz(path)
        # Corrupt the schema header and ensure the loader refuses it.
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["__meta__"] = np.asarray(
            [json.dumps({"schema": 999, "metadata": {}})])
        with zipfile.ZipFile(path, "w") as archive:
            for name, array in arrays.items():
                import io
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, allow_pickle=False)
                archive.writestr(name + ".npy", buffer.getvalue())
        with pytest.raises(ValueError):
            TraceDataset.from_npz(path)
