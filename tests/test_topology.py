"""Tests for repro.devices.topology."""

import pytest

from repro.core.exceptions import DeviceError
from repro.devices.topology import (
    CouplingMap,
    bowtie_topology,
    falcon_topology,
    fully_connected_topology,
    grid_topology,
    heavy_hex_topology,
    hummingbird_topology,
    line_topology,
    ring_topology,
    star_topology,
    t_topology,
)


class TestCouplingMap:
    def test_invalid_edges_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(3, [(0, 3)])
        with pytest.raises(DeviceError):
            CouplingMap(3, [(1, 1)])
        with pytest.raises(DeviceError):
            CouplingMap(0, [])

    def test_neighbors_and_degree(self):
        cmap = line_topology(4)
        assert cmap.neighbors(0) == [1]
        assert cmap.neighbors(1) == [0, 2]
        assert cmap.degree(1) == 2

    def test_distance_on_a_line(self):
        cmap = line_topology(5)
        assert cmap.distance(0, 4) == 4
        assert cmap.distance(2, 2) == 0

    def test_shortest_path_endpoints(self):
        cmap = line_topology(5)
        path = cmap.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4

    def test_disconnected_distance_raises(self):
        cmap = CouplingMap(4, [(0, 1), (2, 3)])
        assert not cmap.is_connected_graph()
        with pytest.raises(DeviceError):
            cmap.distance(0, 3)

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(DeviceError):
            line_topology(3).neighbors(5)

    def test_equality(self):
        assert line_topology(3) == line_topology(3)
        assert line_topology(3) != ring_topology(3)


class TestBisectionBandwidth:
    def test_line_is_one(self):
        assert line_topology(8).bisection_bandwidth() == 1

    def test_ring_is_two(self):
        assert ring_topology(8).bisection_bandwidth() == 2

    def test_grid_matches_mesh_formula(self):
        # The paper's comparison: an 8x8 mesh has bisection bandwidth 8.
        assert grid_topology(4, 4).bisection_bandwidth() == 4

    def test_fully_connected(self):
        # K4 split 2/2 has 4 crossing edges.
        assert fully_connected_topology(4).bisection_bandwidth() == 4

    def test_single_qubit_is_zero(self):
        assert line_topology(1).bisection_bandwidth() == 0

    def test_heuristic_close_to_exact_on_medium_graph(self):
        cmap = grid_topology(3, 4)  # 12 qubits: exact path
        exact = cmap.bisection_bandwidth(exact_limit=14)
        heuristic = cmap.bisection_bandwidth(exact_limit=2)
        assert heuristic >= exact
        assert heuristic <= 2 * exact + 1


class TestTopologyConstructors:
    def test_t_and_bowtie_sizes(self):
        assert t_topology().num_qubits == 5
        assert bowtie_topology().num_qubits == 5

    @pytest.mark.parametrize("qubits", [7, 16, 27])
    def test_falcon_layouts_connected(self, qubits):
        cmap = falcon_topology(qubits)
        assert cmap.num_qubits == qubits
        assert cmap.is_connected_graph()

    def test_falcon_unknown_size_rejected(self):
        with pytest.raises(DeviceError):
            falcon_topology(11)

    @pytest.mark.parametrize("qubits", [53, 65])
    def test_hummingbird_layouts(self, qubits):
        cmap = hummingbird_topology(qubits)
        assert cmap.num_qubits == qubits
        assert cmap.is_connected_graph()
        # Heavy-hex lattices are sparse: average degree well under 3.
        assert 2.0 * cmap.num_edges / cmap.num_qubits < 3.0

    def test_heavy_hex_connected(self):
        assert heavy_hex_topology(4, 9).is_connected_graph()

    def test_star_topology(self):
        cmap = star_topology(5)
        assert cmap.degree(0) == 4
        assert cmap.bisection_bandwidth() >= 2

    def test_grid_invalid_dimensions(self):
        with pytest.raises(DeviceError):
            grid_topology(0, 3)
