"""The out-of-core chunked data plane: blocks, budgets, spills, manifests.

The golden anchor mirrors ``test_dataplane_golden``: a chunked dataset —
any block size, spilled or resident — must be *value-identical* to the
plain in-RAM dataset for every analysis surface, and its ``.npz`` dump
must be *byte-identical*.  On top of that the spill tests drive the full
``report`` / ``compare-scenarios`` paths under a resident-bytes budget far
smaller than the column bytes and assert (via the governor's spill
counter) that the run actually went out of core.
"""

import io
import json
import warnings

import numpy as np
import pytest

from repro.analysis import reproduce_all
from repro.analysis.compare import compare_suite
from repro.core.exceptions import TraceSchemaError, WorkloadError
from repro.runner.cache import TraceCache, config_fingerprint
from repro.runner.executor import run_study
from repro.scenarios import resolve_scenarios, run_scenarios
from repro.service.client import StudyServiceClient
from repro.workloads.blocks import (
    ResidencyGovernor,
    get_memory_budget,
    parse_byte_size,
    set_memory_budget,
)
from repro.workloads.generator import TraceGeneratorConfig, TraceGenerator
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=120, months=2, seed=19)


@pytest.fixture(autouse=True)
def no_leaked_budget():
    """Every test starts and ends with no process-wide memory budget."""
    before = get_memory_budget()
    set_memory_budget(None)
    yield
    set_memory_budget(before)


@pytest.fixture(scope="module")
def plain_trace():
    return TraceGenerator(TraceGeneratorConfig(**CONFIG)).generate()


def _records(trace):
    return [record.as_dict() for record in trace.records]


def _chunked_copy(trace, block_rows, budget=None):
    """An independent chunked rebuild of ``trace`` (own governor)."""
    dataset = TraceDataset.from_records(list(trace.records),
                                        metadata=dict(trace.metadata))
    dataset._chunk_in_place(block_rows=block_rows,
                            governor=ResidencyGovernor(budget))
    return dataset


# -- golden value identity across block sizes ------------------------------------------


@pytest.mark.parametrize("block_rows", [1, 7, 10_000])
class TestBlockwiseIdentity:
    def test_records_and_values_identical(self, plain_trace, block_rows):
        chunked = _chunked_copy(plain_trace, block_rows)
        assert chunked.is_chunked
        assert len(chunked) == len(plain_trace)
        assert _records(chunked) == _records(plain_trace)
        for name in ("submit_time", "queue_minutes", "utilization",
                     "machine", "status", "batch_size"):
            a = plain_trace.values(name)
            b = chunked.values(name)
            if a.dtype.kind == "f":
                np.testing.assert_array_equal(a, b)
            else:
                assert a.tolist() == b.tolist()

    def test_group_by_and_grouped_values_identical(self, plain_trace,
                                                   block_rows):
        chunked = _chunked_copy(plain_trace, block_rows)
        plain_groups = plain_trace.group_by_machine()
        chunked_groups = chunked.group_by_machine()
        assert sorted(plain_groups) == sorted(chunked_groups)
        for machine, subset in plain_groups.items():
            assert _records(chunked_groups[machine]) == _records(subset)
        plain_values = plain_trace.grouped_values("machine", "queue_minutes")
        chunked_values = chunked.grouped_values("machine", "queue_minutes")
        assert sorted(plain_values) == sorted(chunked_values)
        for machine, values in plain_values.items():
            np.testing.assert_array_equal(values, chunked_values[machine])

    def test_figures_identical(self, plain_trace, block_rows):
        fleet = TraceGeneratorConfig(**CONFIG).build_fleet()
        plain = reproduce_all(plain_trace, fleet=fleet).as_dict()
        chunked = reproduce_all(_chunked_copy(plain_trace, block_rows),
                                fleet=fleet).as_dict()
        assert json.dumps(plain, sort_keys=True) \
            == json.dumps(chunked, sort_keys=True)

    def test_npz_bytes_identical(self, plain_trace, block_rows, tmp_path):
        plain_path = tmp_path / "plain.npz"
        chunked_path = tmp_path / "chunked.npz"
        plain_trace.to_npz(plain_path)
        _chunked_copy(plain_trace, block_rows).to_npz(chunked_path)
        assert plain_path.read_bytes() == chunked_path.read_bytes()

    def test_iter_blocks_covers_every_row_once(self, plain_trace, block_rows):
        chunked = _chunked_copy(plain_trace, block_rows)
        sizes = [len(block) for block in chunked.iter_blocks()]
        assert sum(sizes) == len(plain_trace)
        assert all(size <= block_rows for size in sizes)
        totals = chunked.map_blocks(lambda block: block.values("batch_size").sum(),
                                    columns=["batch_size"])
        assert int(sum(totals)) == int(plain_trace.values("batch_size").sum())


# -- spilling under a tiny budget ------------------------------------------------------


class TestSpillUnderBudget:
    def test_budget_forces_spills_with_identical_values(self, plain_trace):
        budget = 2048
        assert budget < plain_trace.column_nbytes()
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=budget)
        assert chunked.is_out_of_core
        for name in ("queue_minutes", "machine", "utilization"):
            a = plain_trace.values(name)
            b = chunked.values(name)
            if a.dtype.kind == "f":
                np.testing.assert_array_equal(a, b)
            else:
                assert a.tolist() == b.tolist()
        stats = chunked.data_plane_stats()
        assert stats["chunked"] is True
        assert stats["spills"] > 0

    def test_report_under_budget_spills_and_matches(self, tmp_path):
        """`run-study --report` under a budget smaller than the columns."""
        config = TraceGeneratorConfig(**CONFIG)
        plain = run_study(config=config, workers=1,
                          cache_dir=tmp_path / "cache-plain")
        fleet = plain.config.build_fleet()
        baseline = reproduce_all(plain.trace, fleet=fleet).as_dict()

        set_memory_budget(2048)
        budgeted = run_study(config=config, workers=1,
                             cache_dir=tmp_path / "cache-budget")
        trace = budgeted.dataset
        assert trace.is_out_of_core
        assert trace.column_nbytes() > 2048
        report = reproduce_all(trace, fleet=fleet).as_dict()
        stats = trace.data_plane_stats()
        assert stats["spills"] > 0
        assert json.dumps(report, sort_keys=True) \
            == json.dumps(baseline, sort_keys=True)

    def test_compare_scenarios_under_budget_spills_and_matches(self,
                                                               tmp_path):
        """`compare-scenarios` end-to-end under a tiny resident budget."""
        config = TraceGeneratorConfig(**CONFIG)
        scenarios = resolve_scenarios(("baseline", "calibration-drift"))

        plain = run_scenarios(scenarios, config, workers=1,
                              cache_dir=tmp_path / "cache-plain")
        baseline = compare_suite(plain).as_dict()

        set_memory_budget(2048)
        budgeted = run_scenarios(scenarios, config, workers=1,
                                 cache_dir=tmp_path / "cache-budget")
        spilled = [run.dataset for run in budgeted
                   if run.dataset.is_out_of_core]
        assert spilled, "no scenario dataset went out of core"
        comparison = compare_suite(budgeted).as_dict()
        assert any(run.dataset.data_plane_stats()["spills"] > 0
                   for run in budgeted)
        assert json.dumps(comparison, sort_keys=True) \
            == json.dumps(baseline, sort_keys=True)


# -- cache manifests -------------------------------------------------------------------


class TestCacheManifests:
    def test_out_of_core_put_writes_manifest_and_round_trips(self, tmp_path,
                                                             plain_trace):
        cache = TraceCache(tmp_path)
        key = "a" * 24
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=2048)
        path = cache.put(key, chunked)
        assert path == cache.manifest_dir_for(key)
        assert (path / "manifest.json").is_file()
        assert not cache.path_for(key).exists()

        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.is_chunked
        assert _records(loaded) == _records(plain_trace)
        # No single-file byte representation for a manifest entry.
        assert cache.get_bytes(key) is None

    def test_in_ram_put_stays_single_npz(self, tmp_path, plain_trace):
        cache = TraceCache(tmp_path)
        key = "b" * 24
        path = cache.put(key, plain_trace)
        assert path == cache.path_for(key)
        assert not cache.manifest_dir_for(key).exists()
        assert cache.get_bytes(key) == path.read_bytes()

    def test_put_replaces_other_format(self, tmp_path, plain_trace):
        cache = TraceCache(tmp_path)
        key = "c" * 24
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=2048)
        cache.put(key, chunked)
        assert cache.manifest_dir_for(key).is_dir()
        cache.put(key, plain_trace)
        assert not cache.manifest_dir_for(key).exists()
        assert cache.path_for(key).is_file()

    def test_entries_evict_and_prune_handle_manifest_dirs(self, tmp_path,
                                                          plain_trace):
        cache = TraceCache(tmp_path)
        key = "d" * 24
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=2048)
        cache.put(key, chunked)
        entries = cache.entries()
        assert [entry.key for entry in entries] == [key]
        assert entries[0].size_bytes > 0
        assert cache.evict(key) is True
        assert not cache.manifest_dir_for(key).exists()

        cache.put(key, chunked)
        evicted = cache.prune(0)
        assert [entry.key for entry in evicted] == [key]
        assert cache.entries() == []

    def test_manifest_schema_mismatch_raises(self, tmp_path, plain_trace):
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=2048)
        directory = chunked.to_block_manifest(tmp_path / "manifest")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["schema"] = -1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TraceSchemaError):
            TraceDataset.from_block_manifest(directory)

    def test_manifest_round_trip_without_cache(self, tmp_path, plain_trace):
        chunked = _chunked_copy(plain_trace, block_rows=16, budget=2048)
        directory = chunked.to_block_manifest(tmp_path / "manifest")
        loaded = TraceDataset.from_block_manifest(directory, budget=2048)
        assert loaded.is_chunked
        assert _records(loaded) == _records(plain_trace)
        assert dict(loaded.metadata) == dict(plain_trace.metadata)


# -- the construction API redesign -----------------------------------------------------


class TestConstructionSurface:
    def test_positional_constructor_is_deprecated(self, plain_trace):
        records = list(plain_trace.records)
        with pytest.warns(DeprecationWarning):
            shimmed = TraceDataset(records)
        assert _records(shimmed) == _records(plain_trace)

    def test_from_records_does_not_warn(self, plain_trace):
        records = list(plain_trace.records)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            built = TraceDataset.from_records(records)
        assert _records(built) == _records(plain_trace)

    def test_from_blocks_builds_chunked_dataset(self, plain_trace):
        blocks = [{name: block._columns[name] for name in block._columns}
                  for block in plain_trace.iter_blocks(block_rows=32)]
        dataset = TraceDataset.from_blocks(
            blocks, dict(plain_trace._vocabs),
            metadata=dict(plain_trace.metadata))
        assert dataset.is_chunked
        assert _records(dataset) == _records(plain_trace)

    def test_parse_byte_size(self):
        assert parse_byte_size(None) is None
        assert parse_byte_size("none") is None
        assert parse_byte_size("1024") == 1024
        assert parse_byte_size("4K") == 4096
        assert parse_byte_size("2m") == 2 * 1024 * 1024
        assert parse_byte_size("1G") == 1024 ** 3
        with pytest.raises(WorkloadError):
            parse_byte_size("lots")
        with pytest.raises(WorkloadError):
            parse_byte_size(-1)

    def test_study_result_handle_surface(self, tmp_path):
        result = run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                           cache_dir=tmp_path)
        assert result.dataset is result.trace
        assert result.fingerprint == result.cache_key
        assert result.fingerprint \
            == config_fingerprint(TraceGeneratorConfig(**CONFIG))
        assert result.metadata["fingerprint"] == result.fingerprint
        assert result.summary()["fingerprint"] == result.fingerprint

    def test_suite_result_handle_surface(self, tmp_path):
        scenarios = resolve_scenarios(("baseline",))
        suite = run_scenarios(scenarios, TraceGeneratorConfig(**CONFIG),
                              workers=1, cache_dir=tmp_path)
        assert sorted(suite.results) == suite.names()
        run = suite.runs[0]
        assert suite.result_for(run.name) is run.result
        assert suite.fingerprints()[run.name] == run.fingerprint
        assert run.dataset is run.result.trace


# -- streaming fetch -------------------------------------------------------------------


class _FakeResponse(io.BytesIO):
    """A context-managed chunked body, recording the read sizes."""

    def __init__(self, payload):
        super().__init__(payload)
        self.read_sizes = []

    def read(self, size=-1):
        self.read_sizes.append(size)
        return super().read(size)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class TestStreamingFetch:
    def test_fetch_trace_to_streams_chunks(self, tmp_path, monkeypatch):
        payload = bytes(range(256)) * 1024  # 256 KiB body
        response = _FakeResponse(payload)
        client = StudyServiceClient("http://example.invalid")
        monkeypatch.setattr(client, "_request",
                            lambda *args, **kwargs: response)
        out = tmp_path / "trace.npz"
        written = client.fetch_trace_to("f" * 24, out, chunk_size=4096)
        assert written == len(payload)
        assert out.read_bytes() == payload
        # Never asked for more than one chunk at a time.
        assert set(response.read_sizes) == {4096}


# -- Arrow / Parquet export ------------------------------------------------------------


class TestArrowExport:
    def test_missing_pyarrow_raises_actionable_error(self, plain_trace,
                                                     tmp_path):
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow installed; the missing-dependency path "
                        "is exercised elsewhere")
        except ImportError:
            pass
        with pytest.raises(WorkloadError, match="pyarrow"):
            plain_trace.to_parquet(tmp_path / "trace.parquet")

    def test_round_trip_through_arrow(self, plain_trace, tmp_path):
        pa = pytest.importorskip("pyarrow")
        table = plain_trace.to_arrow()
        assert table.num_rows == len(plain_trace)
        machine = table.column("machine").to_pylist()
        assert machine == plain_trace.values("machine").tolist()
        parquet = pytest.importorskip("pyarrow.parquet")
        path = tmp_path / "trace.parquet"
        plain_trace.to_parquet(path)
        back = parquet.read_table(path)
        assert back.num_rows == len(plain_trace)
