"""Tests for the synthetic trace generator (repro.workloads.generator)."""

import numpy as np
import pytest

from repro.core.exceptions import WorkloadError
from repro.core.types import JobStatus
from repro.workloads.generator import (
    MONTH_SECONDS,
    TraceGenerator,
    TraceGeneratorConfig,
    generate_study_trace,
)


class TestConfig:
    def test_monthly_counts_sum_to_total(self):
        config = TraceGeneratorConfig(total_jobs=500, months=10, growth_ratio=8.0)
        counts = config.jobs_per_month()
        assert sum(counts) == 500
        assert len(counts) == 10

    def test_monthly_counts_grow(self):
        config = TraceGeneratorConfig(total_jobs=2000, months=12, growth_ratio=10.0)
        counts = config.jobs_per_month()
        assert counts[-1] > 3 * max(counts[0], 1)

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            TraceGeneratorConfig(total_jobs=0)
        with pytest.raises(WorkloadError):
            TraceGeneratorConfig(months=0)
        with pytest.raises(WorkloadError):
            TraceGeneratorConfig(growth_ratio=0)


class TestGeneratedTrace:
    def test_job_count_matches_config(self, small_trace):
        assert 380 <= len(small_trace) <= 400

    def test_every_job_reaches_a_terminal_state(self, small_trace):
        terminal = {JobStatus.DONE.value, JobStatus.ERROR.value,
                    JobStatus.CANCELLED.value}
        assert set(small_trace.column("status")) <= terminal

    def test_most_jobs_succeed(self, small_trace):
        """Fig. 2b: around 95 % of jobs execute to completion."""
        statuses = small_trace.status_counts()
        done_fraction = statuses.get("DONE", 0) / len(small_trace)
        assert done_fraction > 0.9

    def test_timestamps_are_ordered(self, small_trace):
        for record in small_trace:
            if record.start_time is not None:
                assert record.start_time >= record.submit_time
            if record.end_time is not None and record.start_time is not None:
                assert record.end_time >= record.start_time

    def test_submit_times_fall_in_study_window(self, small_trace):
        months = 12
        for record in small_trace:
            assert 0 <= record.submit_time <= months * MONTH_SECONDS * 1.01
            assert 0 <= record.month_index < months

    def test_batch_and_shots_within_ibm_limits(self, small_trace):
        assert max(small_trace.column("batch_size")) <= 900
        assert max(small_trace.column("shots")) <= 8192

    def test_circuits_fit_their_machines(self, small_trace):
        for record in small_trace:
            assert record.circuit_width <= record.machine_qubits

    def test_job_volume_grows_over_time(self, medium_trace):
        """Fig. 2a: usage accelerates over the study period."""
        by_month = medium_trace.group_by_month()
        months = sorted(by_month)
        first_half = sum(len(by_month[m]) for m in months[: len(months) // 2])
        second_half = sum(len(by_month[m]) for m in months[len(months) // 2:])
        assert second_half > 2 * first_half

    def test_public_machines_receive_more_jobs(self, medium_trace):
        """Fig. 9: load concentrates on public machines."""
        public_jobs = len(medium_trace.filter(lambda r: r.access == "public"))
        privileged_jobs = len(medium_trace) - public_jobs
        assert public_jobs > 0 and privileged_jobs > 0

    def test_queue_times_dominate_run_times(self, medium_trace):
        """Insight 7: execution is ~0.1x of queuing on average."""
        ratios = medium_trace.numeric_column("queue_to_run_ratio")
        assert np.median(ratios) > 2.0

    def test_utilization_lower_on_larger_machines(self, medium_trace):
        small_machines = medium_trace.filter(lambda r: r.machine_qubits <= 7)
        large_machines = medium_trace.filter(lambda r: r.machine_qubits >= 27)
        if len(small_machines) and len(large_machines):
            small_util = np.median(small_machines.numeric_column("utilization"))
            large_util = np.median(large_machines.numeric_column("utilization"))
            assert small_util > large_util

    def test_reproducible_for_a_seed(self):
        config = TraceGeneratorConfig(total_jobs=60, months=6, seed=21)
        first = TraceGenerator(config).generate()
        second = TraceGenerator(TraceGeneratorConfig(total_jobs=60, months=6,
                                                     seed=21)).generate()
        assert len(first) == len(second)
        assert first.column("machine") == second.column("machine")
        assert np.allclose(first.numeric_column("queue_seconds"),
                           second.numeric_column("queue_seconds"))

    def test_different_seeds_differ(self):
        a = TraceGenerator(TraceGeneratorConfig(total_jobs=60, months=6,
                                                seed=1)).generate()
        b = TraceGenerator(TraceGeneratorConfig(total_jobs=60, months=6,
                                                seed=2)).generate()
        assert a.column("machine") != b.column("machine") or \
            not np.allclose(a.numeric_column("queue_seconds"),
                            b.numeric_column("queue_seconds"))

    def test_cached_study_trace_reuses_object(self):
        first = generate_study_trace(total_jobs=50, months=4, seed=33)
        second = generate_study_trace(total_jobs=50, months=4, seed=33)
        assert first is second
        fresh = generate_study_trace(total_jobs=50, months=4, seed=33,
                                     use_cache=False)
        assert fresh is not first
        assert len(fresh) == len(first)
