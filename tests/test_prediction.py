"""Tests for repro.prediction (features, runtime model, queue model)."""

import numpy as np
import pytest

from repro.core.exceptions import PredictionError
from repro.prediction.features import (
    CUMULATIVE_FEATURE_SETS,
    FEATURE_NAMES,
    feature_matrix,
    feature_vector,
)
from repro.prediction.queue_model import QueueTimePredictor
from repro.prediction.runtime_model import (
    MachinePredictionResult,
    ProductLinearModel,
    RuntimePredictionStudy,
    train_test_split,
)
from repro.workloads.trace import TraceDataset


class TestFeatures:
    def test_feature_names_match_paper(self):
        assert FEATURE_NAMES == ("batch_size", "shots", "depth", "width",
                                 "gate_ops", "memory_slots", "machine_qubits")

    def test_cumulative_sets_grow_by_one(self):
        lengths = [len(s) for s in CUMULATIVE_FEATURE_SETS]
        assert lengths == list(range(1, len(FEATURE_NAMES) + 1))

    def test_feature_vector_values(self, medium_trace):
        record = medium_trace[0]
        vector = feature_vector(record)
        assert vector["batch_size"] == record.batch_size
        assert vector["machine_qubits"] == record.machine_qubits

    def test_feature_matrix_excludes_unfinished_jobs(self, medium_trace):
        x, y = feature_matrix(medium_trace)
        completed = medium_trace.completed()
        assert x.shape == (len(completed), len(FEATURE_NAMES))
        assert np.all(y > 0)

    def test_unknown_feature_rejected(self, medium_trace):
        with pytest.raises(PredictionError):
            feature_matrix(medium_trace, ["batch_size", "magic"])


class TestTrainTestSplit:
    def test_split_sizes(self, medium_trace):
        train, test = train_test_split(medium_trace.completed(), 0.7, seed=1)
        total = len(medium_trace.completed())
        assert len(train) + len(test) == total
        assert abs(len(train) - 0.7 * total) <= 2

    def test_split_disjoint(self, medium_trace):
        train, test = train_test_split(medium_trace.completed(), 0.7, seed=1)
        train_ids = {r.job_id for r in train}
        test_ids = {r.job_id for r in test}
        assert not train_ids & test_ids

    def test_invalid_fraction(self, medium_trace):
        with pytest.raises(PredictionError):
            train_test_split(medium_trace, 1.2)

    def test_too_small_trace(self):
        with pytest.raises(PredictionError):
            train_test_split(TraceDataset(), 0.7)


class TestProductLinearModel:
    def test_recovers_synthetic_product_relationship(self):
        rng = np.random.default_rng(1)
        batch = rng.uniform(1, 900, size=300)
        shots = rng.uniform(100, 8192, size=300)
        x = np.column_stack([batch, shots])
        y = (0.5 + 0.02 * batch) * (1.0 + 0.0002 * shots)
        model = ProductLinearModel(["batch_size", "shots"]).fit(x, y)
        predicted = model.predict(x)
        correlation = np.corrcoef(predicted, y)[0, 1]
        assert correlation > 0.99

    def test_predict_before_fit_rejected(self):
        model = ProductLinearModel(["batch_size"])
        with pytest.raises(PredictionError):
            model.predict(np.array([[1.0]]))

    def test_wrong_feature_count_rejected(self):
        model = ProductLinearModel(["batch_size", "shots"])
        with pytest.raises(PredictionError):
            model.fit(np.ones((50, 3)), np.ones(50))

    def test_insufficient_samples_rejected(self):
        model = ProductLinearModel(list(FEATURE_NAMES))
        with pytest.raises(PredictionError):
            model.fit(np.ones((3, len(FEATURE_NAMES))), np.ones(3))

    def test_predictions_non_negative(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 10, size=(100, 1))
        y = 2.0 + 0.5 * x[:, 0]
        model = ProductLinearModel(["batch_size"]).fit(x, y)
        assert np.all(model.predict(x) >= 0)

    def test_unknown_feature_rejected(self):
        with pytest.raises(PredictionError):
            ProductLinearModel(["nope"])


class TestRuntimePredictionStudy:
    def test_correlations_high_for_most_machines(self, medium_trace):
        """Fig. 15: correlation >= 0.95 on all but a couple of machines."""
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        results = study.run(medium_trace)
        assert len(results) >= 3
        correlations = [r.full_model_correlation for r in results.values()]
        assert np.median(correlations) > 0.9
        high = sum(1 for c in correlations if c >= 0.9)
        assert high >= len(correlations) - 2

    def test_batch_is_the_dominant_feature(self, medium_trace):
        """Fig. 15: the batch-only model already correlates strongly."""
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        results = study.run(medium_trace)
        batch_only = [r.correlations.get("Batch", 0.0) for r in results.values()]
        assert np.median(batch_only) > 0.8

    def test_result_contains_fig16_series(self, medium_trace):
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        results = study.run(medium_trace)
        result = max(results.values(), key=lambda r: r.num_jobs)
        assert len(result.test_actual_minutes) == len(result.test_predicted_minutes)
        assert len(result.test_actual_minutes) > 0

    def test_too_small_trace_rejected(self, small_trace):
        study = RuntimePredictionStudy(min_jobs_per_machine=10 ** 6)
        with pytest.raises(PredictionError):
            study.run(small_trace)

    def test_machine_prediction_result_defaults(self):
        result = MachinePredictionResult(machine="m", num_jobs=0)
        assert result.best_correlation == 0.0
        assert result.full_model_correlation == 0.0


class TestQueueTimePredictor:
    def test_fit_and_predict(self, medium_trace):
        predictor = QueueTimePredictor(confidence=0.8).fit(medium_trace)
        machine = medium_trace.machines()[0]
        prediction = predictor.predict(machine, pending_ahead=10)
        assert prediction.lower_minutes <= prediction.expected_minutes
        assert prediction.expected_minutes <= prediction.upper_minutes
        assert prediction.based_on_jobs > 0

    def test_coverage_close_to_confidence(self, medium_trace):
        predictor = QueueTimePredictor(confidence=0.8).fit(medium_trace)
        coverage = predictor.coverage(medium_trace)
        assert coverage > 0.5

    def test_unknown_machine_rejected(self, medium_trace):
        predictor = QueueTimePredictor().fit(medium_trace)
        with pytest.raises(PredictionError):
            predictor.predict("ibmq_atlantis")

    def test_invalid_confidence(self):
        with pytest.raises(PredictionError):
            QueueTimePredictor(confidence=1.5)

    def test_empty_trace_rejected(self):
        with pytest.raises(PredictionError):
            QueueTimePredictor().fit(TraceDataset())
