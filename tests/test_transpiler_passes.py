"""Tests for the individual transpiler passes."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import IBM_BASIS_GATES
from repro.circuits.library import ghz_circuit, qft_circuit
from repro.core.exceptions import TranspilerError
from repro.devices.topology import line_topology, t_topology
from repro.fidelity.statevector import StatevectorSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.passes import (
    ApplyLayout,
    BasicSwap,
    BasisTranslator,
    CheckMap,
    Collect2qBlocks,
    CommutativeCancellation,
    ConsolidateBlocks,
    CSPLayout,
    DenseLayout,
    Depth,
    EnlargeWithAncilla,
    FixedPoint,
    FullAncillaAllocation,
    NoiseAdaptiveLayout,
    Optimize1qGates,
    PropertySet,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveResetInZeroState,
    SabreLayout,
    SetLayout,
    StochasticSwap,
    TrivialLayout,
    Unroll3qOrMore,
    UnitarySynthesis,
    UnrollCustomDefinitions,
)
from repro.transpiler.passes.optimization import (
    BarrierBeforeFinalMeasurements,
    OptimizeSwapBeforeMeasure,
)


def _properties(coupling_map, calibration=None):
    props = PropertySet({"coupling_map": coupling_map})
    if calibration is not None:
        props["calibration"] = calibration
    return props


def _statevector_equal(circuit_a, circuit_b):
    """Compare circuits up to global phase (ignoring measurements)."""
    simulator = StatevectorSimulator()
    state_a = simulator.run(circuit_a.without_measurements())
    state_b = simulator.run(circuit_b.without_measurements())
    overlap = abs(np.vdot(state_a, state_b))
    return overlap == pytest.approx(1.0, abs=1e-7)


class TestLayoutPasses:
    def test_trivial_layout_identity(self):
        circuit = ghz_circuit(3)
        props = _properties(line_topology(5))
        TrivialLayout().run(circuit, props)
        assert props["layout"] == Layout.trivial(3)

    def test_trivial_layout_rejects_oversized_circuit(self):
        props = _properties(line_topology(2))
        with pytest.raises(TranspilerError):
            TrivialLayout().run(ghz_circuit(3), props)

    def test_set_layout_honours_request(self):
        circuit = ghz_circuit(2)
        requested = Layout({0: 3, 1: 4})
        props = _properties(line_topology(5))
        props["requested_layout"] = requested
        SetLayout().run(circuit, props)
        assert props["layout"] == requested

    def test_dense_layout_picks_connected_region(self):
        circuit = ghz_circuit(3)
        props = _properties(t_topology())
        DenseLayout().run(circuit, props)
        layout = props["layout"]
        physical = [layout.physical(v) for v in range(3)]
        assert t_topology().subgraph_is_connected(physical)

    def test_noise_adaptive_layout_prefers_good_edges(self, casablanca):
        circuit = ghz_circuit(2)
        calibration = casablanca.calibration_at(0.0)
        props = _properties(casablanca.coupling_map, calibration)
        NoiseAdaptiveLayout().run(circuit, props)
        layout = props["layout"]
        a, b = layout.physical(0), layout.physical(1)

        def edge_cost(x, y):
            gate = calibration.gate(x, y)
            readout = (calibration.qubit(x).readout_error
                       + calibration.qubit(y).readout_error)
            return gate.error + 0.25 * readout

        chosen_cost = edge_cost(a, b)
        best_cost = min(edge_cost(*edge) for edge in casablanca.coupling_map.edges)
        assert chosen_cost == pytest.approx(best_cost)

    def test_csp_layout_finds_swap_free_mapping_when_possible(self):
        # GHZ chain on a line topology admits a perfect layout.
        circuit = ghz_circuit(4)
        props = _properties(line_topology(5))
        CSPLayout().run(circuit, props)
        assert props["csp_layout_found"] is True
        layout = props["layout"]
        for instr in circuit.two_qubit_instructions():
            a, b = layout.physical(instr.qubits[0]), layout.physical(instr.qubits[1])
            assert line_topology(5).are_connected(a, b)

    def test_csp_layout_gives_up_when_impossible(self):
        # A 5-qubit QFT is all-to-all; the T topology cannot host it swap-free.
        circuit = qft_circuit(5)
        props = _properties(t_topology())
        CSPLayout().run(circuit, props)
        assert props["csp_layout_found"] is False
        assert props.get("layout") is None

    def test_sabre_layout_produces_complete_layout(self, casablanca):
        circuit = qft_circuit(4)
        props = _properties(casablanca.coupling_map,
                            casablanca.calibration_at(0.0))
        SabreLayout(iterations=1).run(circuit, props)
        layout = props["layout"]
        assert all(layout.has_virtual(v) for v in range(4))


class TestAllocationPasses:
    def test_full_ancilla_allocation_covers_device(self):
        circuit = ghz_circuit(2)
        props = _properties(line_topology(5))
        TrivialLayout().run(circuit, props)
        FullAncillaAllocation().run(circuit, props)
        assert props["layout"].num_mapped == 5
        assert props["num_ancillas"] == 3

    def test_enlarge_and_apply_layout(self):
        circuit = ghz_circuit(2)
        props = _properties(line_topology(5))
        TrivialLayout().run(circuit, props)
        FullAncillaAllocation().run(circuit, props)
        widened = EnlargeWithAncilla().run(circuit, props)
        applied = ApplyLayout().run(widened, props)
        assert applied.num_qubits == 5

    def test_apply_layout_requires_complete_layout(self):
        circuit = ghz_circuit(3)
        props = _properties(line_topology(5))
        props["layout"] = Layout({0: 0})
        with pytest.raises(TranspilerError):
            ApplyLayout().run(circuit, props)


class TestRoutingPasses:
    @pytest.mark.parametrize("router", [BasicSwap(), StochasticSwap(trials=3)])
    def test_routing_makes_circuit_mapped(self, router):
        topology = line_topology(5)
        circuit = QuantumCircuit(5).cx(0, 4).cx(1, 3)
        props = _properties(topology)
        routed = router.run(circuit, props)
        check = PropertySet({"coupling_map": topology})
        CheckMap().run(routed, check)
        assert check["is_swap_mapped"] is True
        assert props["swap_count"] > 0

    def test_routing_preserves_two_qubit_gate_count(self):
        topology = line_topology(5)
        circuit = QuantumCircuit(5).cx(0, 4).cx(2, 4)
        routed = BasicSwap().run(circuit, _properties(topology))
        original_cx = circuit.gate_counts().get("cx", 0)
        routed_cx = routed.gate_counts().get("cx", 0)
        assert routed_cx == original_cx  # swaps are separate gates

    def test_stochastic_swap_not_worse_than_basic(self):
        topology = line_topology(6)
        circuit = QuantumCircuit(6)
        for a in range(6):
            for b in range(a + 1, 6):
                circuit.cx(a, b)
        basic_props = _properties(topology)
        BasicSwap().run(circuit, basic_props)
        stochastic_props = _properties(topology)
        StochasticSwap(trials=6, seed=3).run(circuit, stochastic_props)
        assert stochastic_props["swap_count"] <= basic_props["swap_count"] * 1.5

    def test_checkmap_detects_unmapped(self):
        topology = line_topology(4)
        circuit = QuantumCircuit(4).cx(0, 3)
        props = _properties(topology)
        CheckMap().run(circuit, props)
        assert props["is_swap_mapped"] is False

    def test_adjacent_gates_need_no_swaps(self):
        topology = line_topology(3)
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        props = _properties(topology)
        routed = StochasticSwap().run(circuit, props)
        assert props["swap_count"] == 0
        assert routed.gate_counts() == circuit.gate_counts()


class TestUnrollPasses:
    def test_unroll_3q(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        unrolled = Unroll3qOrMore().run(circuit, PropertySet())
        assert all(instr.gate.num_qubits <= 2 for instr in unrolled)
        assert _statevector_equal(circuit, unrolled)

    def test_basis_translation_only_emits_basis_gates(self):
        circuit = qft_circuit(3)
        translated = BasisTranslator().run(circuit, PropertySet())
        allowed = set(IBM_BASIS_GATES) | {"measure", "barrier", "reset"}
        assert set(translated.gate_counts()) <= allowed

    @pytest.mark.parametrize("builder", [
        lambda: QuantumCircuit(1).h(0),
        lambda: QuantumCircuit(1).t(0).s(0).sdg(0),
        lambda: QuantumCircuit(1).rx(0.3, 0).ry(0.7, 0),
        lambda: QuantumCircuit(2).swap(0, 1),
        lambda: QuantumCircuit(2).cz(0, 1),
        lambda: QuantumCircuit(2).cp(0.4, 0, 1),
        lambda: QuantumCircuit(2).rzz(0.9, 0, 1),
        lambda: QuantumCircuit(3).ccx(0, 1, 2),
    ])
    def test_basis_translation_preserves_semantics(self, builder):
        circuit = builder()
        translated = BasisTranslator().run(
            Unroll3qOrMore().run(circuit, PropertySet()), PropertySet()
        )
        assert _statevector_equal(circuit, translated)

    def test_unroll_custom_definitions_accepts_known_gates(self):
        circuit = qft_circuit(3)
        UnrollCustomDefinitions().run(circuit, PropertySet())  # no exception

    def test_unitary_synthesis_replaces_u_gates(self):
        circuit = QuantumCircuit(1).u(0.3, 0.1, -0.4, 0)
        synthesised = UnitarySynthesis().run(circuit, PropertySet())
        assert "u" not in synthesised.gate_counts()
        assert _statevector_equal(circuit, synthesised)


class TestOptimizationPasses:
    def test_optimize_1q_merges_runs(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0).s(0)
        optimised = Optimize1qGates().run(circuit, PropertySet())
        assert optimised.size < circuit.size
        assert _statevector_equal(circuit, optimised)

    def test_optimize_1q_removes_identity_runs(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        optimised = Optimize1qGates().run(circuit, PropertySet())
        assert optimised.size == 0

    def test_commutative_cancellation_removes_cx_pairs(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).h(0)
        optimised = CommutativeCancellation().run(circuit, PropertySet())
        assert optimised.gate_counts().get("cx", 0) == 0
        assert _statevector_equal(circuit, optimised)

    def test_commutative_cancellation_merges_rz(self):
        circuit = QuantumCircuit(1).rz(0.3, 0).rz(0.4, 0)
        optimised = CommutativeCancellation().run(circuit, PropertySet())
        assert optimised.size == 1
        assert optimised.instructions[0].gate.params[0] == pytest.approx(0.7)

    def test_commutative_cancellation_keeps_reversed_cx(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        optimised = CommutativeCancellation().run(circuit, PropertySet())
        assert optimised.gate_counts().get("cx", 0) == 2

    def test_remove_diagonal_before_measure(self):
        circuit = QuantumCircuit(1).h(0).rz(0.3, 0).measure(0, 0)
        optimised = RemoveDiagonalGatesBeforeMeasure().run(circuit, PropertySet())
        assert "rz" not in optimised.gate_counts()
        assert optimised.count_measurements() == 1

    def test_diagonal_not_removed_when_followed_by_non_measure(self):
        circuit = QuantumCircuit(1).rz(0.3, 0).h(0).measure(0, 0)
        optimised = RemoveDiagonalGatesBeforeMeasure().run(circuit, PropertySet())
        assert "rz" in optimised.gate_counts()

    def test_remove_reset_in_zero_state(self):
        circuit = QuantumCircuit(2)
        circuit.reset(0)       # qubit untouched: removable
        circuit.h(1)
        circuit.reset(1)       # qubit already used: must stay
        optimised = RemoveResetInZeroState().run(circuit, PropertySet())
        assert optimised.gate_counts().get("reset", 0) == 1

    def test_optimize_swap_before_measure(self):
        circuit = QuantumCircuit(2).h(0).swap(0, 1).measure(0, 0).measure(1, 1)
        optimised = OptimizeSwapBeforeMeasure().run(circuit, PropertySet())
        assert "swap" not in optimised.gate_counts()
        assert optimised.count_measurements() == 2

    def test_barrier_before_final_measurements(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        rebuilt = BarrierBeforeFinalMeasurements().run(circuit, PropertySet())
        names = [i.name for i in rebuilt.instructions]
        assert "barrier" in names
        assert names.index("barrier") < names.index("measure")

    def test_collect_and_consolidate_blocks(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        props = PropertySet()
        Collect2qBlocks().run(circuit, props)
        assert props["blocks_2q"], "expected at least one collected block"
        consolidated = ConsolidateBlocks().run(circuit, props)
        assert consolidated.gate_counts().get("cx", 0) == 1
        assert _statevector_equal(circuit, consolidated)

    def test_depth_and_fixed_point(self):
        circuit = ghz_circuit(3)
        props = PropertySet()
        Depth().run(circuit, props)
        FixedPoint("depth").run(circuit, props)
        assert props["depth"] == circuit.depth()
        assert props["depth_fixed_point"] is False
        Depth().run(circuit, props)
        FixedPoint("depth").run(circuit, props)
        assert props["depth_fixed_point"] is True
