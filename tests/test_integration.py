"""Integration tests: the full pipeline from circuits to analyses.

These tests exercise the same paths the benchmark harness uses, end to end:
generate a trace with the cloud simulator, run every analysis the paper
reports, fit the prediction models, and apply the recommendation policies.
"""

import numpy as np

from repro.analysis import (
    batch_runtime_trend,
    bisection_bandwidth_table,
    crossover_statistics,
    cumulative_trials_by_month,
    queue_time_percentile_report,
    ratio_report,
    run_time_by_machine,
    status_breakdown,
    utilization_by_machine,
)
from repro.circuits import qft_echo_circuit
from repro.cloud import CircuitSpec, Job, QuantumCloudService, circuit_spec_from_circuit
from repro.core.types import JobStatus
from repro.devices import build_fleet
from repro.fidelity import estimate_success_probability, measure_probability_of_success
from repro.prediction import QueueTimePredictor, RuntimePredictionStudy
from repro.scheduling import BatchingPlanner, MachineSelector, SelectionObjective
from repro.transpiler import transpile


class TestFullAnalysisPipeline:
    def test_every_paper_analysis_runs_on_one_trace(self, medium_trace, fleet):
        """One pass over the medium trace touches every figure's analysis."""
        assert cumulative_trials_by_month(medium_trace)[-1].cumulative_trials > 0
        assert status_breakdown(medium_trace)["DONE"] > 0.8
        assert queue_time_percentile_report(medium_trace).median_minutes > 0
        assert ratio_report(medium_trace).median_ratio > 0
        assert len(bisection_bandwidth_table(fleet)) >= 25
        assert len(utilization_by_machine(medium_trace)) > 3
        assert len(run_time_by_machine(medium_trace)) > 3
        assert batch_runtime_trend(medium_trace).slope_minutes_per_circuit > 0
        assert 0 < crossover_statistics(medium_trace).crossover_fraction < 1

    def test_prediction_pipeline_on_trace(self, medium_trace):
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        results = study.run(medium_trace)
        correlations = [r.full_model_correlation for r in results.values()]
        assert np.median(correlations) > 0.85
        predictor = QueueTimePredictor().fit(medium_trace)
        machine = next(iter(results))
        prediction = predictor.predict(machine, pending_ahead=20)
        assert prediction.upper_minutes >= prediction.lower_minutes >= 0


class TestClientWorkflow:
    """The end-to-end path a user of the library would follow."""

    def test_compile_estimate_submit_and_analyse(self):
        fleet = build_fleet(["ibmq_athens", "ibmq_casablanca", "ibmq_toronto"],
                            seed=7)
        service = QuantumCloudService(fleet, seed=7)

        # 1. Build a benchmark circuit and pick a machine by fidelity/queue.
        circuit = qft_echo_circuit(3)
        selector = MachineSelector(SelectionObjective.BALANCED)
        waits = {name: service.pending_jobs_estimate(name, 0.0)
                 for name in fleet}
        choice = selector.select(circuit, list(fleet.values()),
                                 expected_wait_minutes=waits)
        backend = fleet[choice.machine]

        # 2. Compile and estimate the success probability.
        compiled = transpile(circuit, backend, optimization_level=2)
        estimate = estimate_success_probability(
            compiled.circuit, backend.calibration_at(0.0))
        assert 0.0 < estimate.probability <= 1.0

        # 3. Measure a POS with the noisy sampler (the hardware stand-in).
        pos = measure_probability_of_success(
            circuit, compiled.circuit, backend.calibration_at(0.0), shots=1024)
        assert 0.0 <= pos <= 1.0

        # 4. Batch the circuit into a job and submit it to the cloud.
        spec = circuit_spec_from_circuit(compiled.circuit, family="qft_echo")
        spec = CircuitSpec(name=spec.name, width=circuit.num_qubits,
                           depth=spec.depth, num_gates=spec.num_gates,
                           cx_count=spec.cx_count, cx_depth=spec.cx_depth,
                           family="qft_echo")
        planner = BatchingPlanner(backend, expected_queue_minutes=30.0)
        plan = planner.plan([spec] * 10)
        assert plan.num_jobs == 1
        job = Job(provider="academic-hub", backend_name=backend.name,
                  circuits=list(plan.batches[0]), shots=1024,
                  submit_time=0.0, compile_seconds=compiled.total_seconds)
        service.submit(job)
        service.drain()

        # 5. The job completes with timestamps the analysis layer understands.
        assert job.status in (JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED)
        if job.status is not JobStatus.CANCELLED:
            assert job.run_seconds > 0
            assert job.queue_seconds >= 0
