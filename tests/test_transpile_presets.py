"""Tests for the preset transpilation pipelines (repro.transpiler.presets)."""

import numpy as np
import pytest

from repro.circuits.gates import IBM_BASIS_GATES
from repro.circuits.library import bv_circuit, ghz_circuit, qft_circuit
from repro.core.exceptions import TranspilerError
from repro.fidelity.statevector import StatevectorSimulator
from repro.transpiler import OPTIMIZATION_LEVELS, preset_pass_manager, transpile
from repro.transpiler.layout import Layout
from repro.transpiler.passes import CheckMap, PropertySet


def _marginal_probabilities(circuit, qubits, total_qubits):
    """Probability distribution over a subset of qubits of a compiled circuit."""
    simulator = StatevectorSimulator(max_qubits=12)
    probabilities = simulator.probabilities(circuit.without_measurements())
    marginal = np.zeros(2 ** len(qubits))
    for index, probability in enumerate(probabilities):
        key = 0
        for position, qubit in enumerate(qubits):
            bit = (index >> qubit) & 1
            key |= bit << position
        marginal[key] += probability
    return marginal


class TestPresets:
    def test_all_levels_available(self):
        for level in OPTIMIZATION_LEVELS:
            assert len(preset_pass_manager(level)) > 5

    def test_invalid_level_rejected(self):
        with pytest.raises(TranspilerError):
            preset_pass_manager(7)

    def test_oversized_circuit_rejected(self, athens):
        with pytest.raises(TranspilerError):
            transpile(qft_circuit(6), athens)


class TestTranspileOutput:
    @pytest.mark.parametrize("level", OPTIMIZATION_LEVELS)
    def test_output_in_basis_and_mapped(self, casablanca, level):
        result = transpile(qft_circuit(4), casablanca, optimization_level=level)
        compiled = result.circuit
        allowed = set(IBM_BASIS_GATES) | {"measure", "barrier", "reset"}
        assert set(compiled.gate_counts()) <= allowed
        props = PropertySet({"coupling_map": casablanca.coupling_map})
        CheckMap().run(compiled, props)
        assert props["is_swap_mapped"] is True
        assert compiled.num_qubits == casablanca.num_qubits

    @pytest.mark.parametrize("level", OPTIMIZATION_LEVELS)
    def test_timings_cover_every_pass(self, casablanca, level):
        result = transpile(ghz_circuit(3), casablanca, optimization_level=level)
        manager = preset_pass_manager(level)
        assert len(result.timings) == len(manager)
        assert result.total_seconds > 0
        assert all(t.seconds >= 0 for t in result.timings)

    def test_higher_levels_do_not_increase_cx(self, casablanca):
        circuit = qft_circuit(4)
        cx_counts = {
            level: transpile(circuit, casablanca, optimization_level=level,
                             seed=23).circuit.cx_count
            for level in (0, 3)
        }
        assert cx_counts[3] <= cx_counts[0]

    def test_initial_layout_respected(self, casablanca):
        circuit = ghz_circuit(2)
        layout = Layout({0: 5, 1: 6})
        result = transpile(circuit, casablanca, optimization_level=1,
                           initial_layout=layout)
        assert result.layout.physical(0) == 5
        assert result.layout.physical(1) == 6

    def test_summary_fields(self, casablanca):
        result = transpile(ghz_circuit(3), casablanca, optimization_level=2)
        summary = result.summary()
        assert summary["width"] == casablanca.num_qubits
        assert summary["cx_count"] >= 2
        assert summary["total_compile_seconds"] == pytest.approx(result.total_seconds)

    def test_timing_by_pass_sums_to_total(self, casablanca):
        result = transpile(ghz_circuit(3), casablanca, optimization_level=3)
        assert sum(result.timing_by_pass().values()) == pytest.approx(
            result.total_seconds)


class TestSemanticEquivalence:
    """Compiled circuits must compute the same function as the source."""

    @pytest.mark.parametrize("level", [1, 3])
    def test_ghz_distribution_preserved(self, level):
        from repro.devices import build_backend

        backend = build_backend("ibmq_athens", seed=1)
        circuit = ghz_circuit(3)
        result = transpile(circuit, backend, optimization_level=level, seed=5)
        # Map the logical qubits through the final layout (routing may permute).
        layout = result.properties.get("final_layout")
        initial = result.layout
        physical = []
        for virtual in range(3):
            start = initial.physical(virtual)
            end = layout.physical(start) if layout is not None else start
            physical.append(end)
        marginal = _marginal_probabilities(result.circuit, physical,
                                           backend.num_qubits)
        # GHZ: only all-zeros and all-ones outcomes, each with probability 1/2.
        assert marginal[0] == pytest.approx(0.5, abs=1e-6)
        assert marginal[-1] == pytest.approx(0.5, abs=1e-6)

    def test_bv_secret_recovered(self):
        from repro.devices import build_backend

        backend = build_backend("ibmq_athens", seed=1)
        circuit = bv_circuit(4)  # 3 data qubits + ancilla
        secret = circuit.metadata["secret"]
        result = transpile(circuit, backend, optimization_level=3, seed=5)
        layout = result.properties.get("final_layout")
        initial = result.layout
        physical = []
        for virtual in range(3):
            start = initial.physical(virtual)
            end = layout.physical(start) if layout is not None else start
            physical.append(end)
        marginal = _marginal_probabilities(result.circuit, physical,
                                           backend.num_qubits)
        expected_index = int(secret, 2)
        assert marginal[expected_index] == pytest.approx(1.0, abs=1e-6)
