"""Tests for repro.fidelity (metrics, estimator, statevector, sampler)."""


import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, qft_circuit
from repro.core.exceptions import CircuitError
from repro.core.rng import RandomSource
from repro.fidelity import (
    NoisySampler,
    StatevectorSimulator,
    compute_cx_metrics,
    estimate_success_probability,
    ideal_distribution,
    measure_probability_of_success,
)
from repro.transpiler import transpile


class TestStatevector:
    def test_initial_state(self):
        state = StatevectorSimulator().run(QuantumCircuit(2))
        assert state[0] == pytest.approx(1.0)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_x_gate(self):
        state = StatevectorSimulator().run(QuantumCircuit(1).x(0))
        assert abs(state[1]) == pytest.approx(1.0)

    def test_bell_state(self):
        state = StatevectorSimulator().run(QuantumCircuit(2).h(0).cx(0, 1))
        probabilities = np.abs(state) ** 2
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)
        assert probabilities[1] == pytest.approx(0.0)

    def test_ghz_distribution(self):
        distribution = ideal_distribution(ghz_circuit(4, measure=False))
        assert set(distribution) == {"0000", "1111"}
        assert distribution["0000"] == pytest.approx(0.5)

    def test_qft_on_zero_state_is_uniform(self):
        probabilities = StatevectorSimulator().probabilities(
            qft_circuit(3, measure=False))
        assert np.allclose(probabilities, 1.0 / 8.0)

    def test_norm_preserved_through_random_unitaries(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(2).rz(0.3, 1).cx(1, 2).ry(0.7, 0)
        state = StatevectorSimulator().run(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_reset_projects_to_zero(self):
        circuit = QuantumCircuit(1).x(0).reset(0)
        state = StatevectorSimulator().run(circuit)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_qubit_limit_enforced(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(CircuitError):
            simulator.run(QuantumCircuit(4))

    def test_counts_sum_to_shots(self):
        counts = StatevectorSimulator().counts(ghz_circuit(2, measure=False),
                                               shots=256, rng=RandomSource(1))
        assert sum(counts.values()) == 256
        assert set(counts) <= {"00", "11"}


class TestCxMetrics:
    def test_counts_match_circuit(self, casablanca):
        result = transpile(qft_circuit(4), casablanca, optimization_level=1)
        calibration = casablanca.calibration_at(0.0)
        metrics = compute_cx_metrics(result.circuit, calibration)
        assert metrics.cx_total == result.circuit.cx_count
        assert metrics.cx_depth == result.circuit.cx_depth
        assert metrics.cx_total_x_error == pytest.approx(
            metrics.cx_total * metrics.average_cx_error)

    def test_no_calibration_gives_zero_error(self):
        circuit = ghz_circuit(3)
        metrics = compute_cx_metrics(circuit, calibration=None)
        assert metrics.average_cx_error == 0.0
        assert metrics.cx_total == 2

    def test_empty_circuit(self):
        metrics = compute_cx_metrics(QuantumCircuit(2))
        assert metrics.cx_total == 0
        assert metrics.cx_depth == 0


class TestSuccessEstimator:
    def test_probability_in_unit_interval(self, casablanca):
        result = transpile(qft_circuit(4), casablanca, optimization_level=2)
        estimate = estimate_success_probability(
            result.circuit, casablanca.calibration_at(0.0))
        assert 0.0 < estimate.probability < 1.0
        assert 0.0 < estimate.gate_factor <= 1.0
        assert 0.0 < estimate.readout_factor <= 1.0
        assert 0.0 < estimate.decoherence_factor <= 1.0

    def test_more_cx_means_lower_esp(self, casablanca):
        """The Fig. 7 correlation: success falls as CX metrics rise."""
        calibration = casablanca.calibration_at(0.0)
        small = transpile(ghz_circuit(3), casablanca, optimization_level=2)
        large = transpile(qft_circuit(6), casablanca, optimization_level=2)
        esp_small = estimate_success_probability(small.circuit, calibration)
        esp_large = estimate_success_probability(large.circuit, calibration)
        assert esp_large.cx_metrics.cx_total > esp_small.cx_metrics.cx_total
        assert esp_large.probability < esp_small.probability

    def test_empty_circuit_has_unit_gate_factor(self, casablanca):
        estimate = estimate_success_probability(
            QuantumCircuit(1), casablanca.calibration_at(0.0))
        assert estimate.gate_factor == pytest.approx(1.0)

    def test_as_dict_contains_metric_keys(self, casablanca):
        result = transpile(ghz_circuit(2), casablanca, optimization_level=1)
        estimate = estimate_success_probability(
            result.circuit, casablanca.calibration_at(0.0))
        payload = estimate.as_dict()
        assert "probability" in payload and "cx_total" in payload


class TestNoisySampler:
    def test_counts_sum_to_shots(self, casablanca):
        logical = ghz_circuit(3)
        result = transpile(logical, casablanca, optimization_level=1)
        sampler = NoisySampler(seed=1)
        sampled = sampler.sample(logical, result.circuit,
                                 casablanca.calibration_at(0.0), shots=512)
        assert sum(sampled.counts.values()) == 512
        assert 0.0 <= sampled.probability_of_success <= 1.0

    def test_pos_degrades_with_bigger_circuits(self, casablanca):
        calibration = casablanca.calibration_at(0.0)
        small_logical = ghz_circuit(2)
        large_logical = ghz_circuit(6)
        small_pos = measure_probability_of_success(
            small_logical,
            transpile(small_logical, casablanca, optimization_level=2).circuit,
            calibration, shots=2048, seed=3)
        large_pos = measure_probability_of_success(
            large_logical,
            transpile(large_logical, casablanca, optimization_level=2).circuit,
            calibration, shots=2048, seed=3)
        assert large_pos < small_pos

    def test_invalid_shots_rejected(self, casablanca):
        logical = ghz_circuit(2)
        compiled = transpile(logical, casablanca).circuit
        with pytest.raises(CircuitError):
            NoisySampler().sample(logical, compiled,
                                  casablanca.calibration_at(0.0), shots=0)
