"""Tests for the cloud dashboard (repro.cloud.dashboard)."""

import pytest

from repro.cloud.dashboard import CloudDashboard
from repro.cloud.service import QuantumCloudService
from repro.core.exceptions import CloudError
from repro.devices import build_fleet


@pytest.fixture(scope="module")
def dashboard_fleet():
    return build_fleet(["ibmq_athens", "ibmq_rome", "ibmq_casablanca",
                        "ibmq_toronto", "ibmq_qasm_simulator"], seed=4)


class TestCloudDashboard:
    def test_status_covers_every_machine(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        rows = dashboard.status(at_time=0.0)
        assert {row.machine for row in rows} == set(dashboard_fleet)
        assert rows == sorted(rows, key=lambda r: (r.qubits, r.machine))
        for row in rows:
            assert row.pending_jobs >= 0
            assert 0 <= row.average_readout_error < 1

    def test_online_flag_follows_fleet_history(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        rows = dashboard.status(at_time=0.0, month_index=0)
        athens = next(r for r in rows if r.machine == "ibmq_athens")
        assert athens.online is False  # Athens came online mid-study

    def test_least_busy_prefers_quiet_machines(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        least = dashboard.least_busy(at_time=1000.0)
        statuses = {r.machine: r.pending_jobs for r in dashboard.status(1000.0)}
        assert least.pending_jobs == min(statuses.values())

    def test_least_busy_respects_qubit_filter(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        least = dashboard.least_busy(at_time=0.0, min_qubits=20)
        assert least.qubits >= 20

    def test_least_busy_public_only(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        least = dashboard.least_busy(at_time=0.0, public_only=True)
        assert least.access == "public"

    def test_least_busy_impossible_filter_rejected(self, dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        with pytest.raises(CloudError):
            dashboard.least_busy(min_qubits=1000)

    def test_best_calibrated_prefers_hardware_with_lowest_error(self,
                                                                dashboard_fleet):
        dashboard = CloudDashboard(dashboard_fleet, seed=4)
        best = dashboard.best_calibrated(at_time=0.0)
        hardware_errors = {
            r.machine: r.average_cx_error for r in dashboard.status(0.0)
            if not dashboard_fleet[r.machine].is_simulator
        }
        assert best.average_cx_error == min(hardware_errors.values())

    def test_service_backed_pending_estimates(self, dashboard_fleet):
        service = QuantumCloudService(dashboard_fleet, seed=4)
        dashboard = CloudDashboard(dashboard_fleet, service=service, seed=4)
        rows = dashboard.status(at_time=0.0)
        assert all(row.pending_jobs >= 0 for row in rows)

    def test_render_is_a_table(self, dashboard_fleet):
        text = CloudDashboard(dashboard_fleet, seed=4).render()
        assert "quantum cloud dashboard" in text
        assert "ibmq_toronto" in text

    def test_empty_fleet_rejected(self):
        with pytest.raises(CloudError):
            CloudDashboard({})
