"""Tests for repro.core.rng."""

import numpy as np

from repro.core.rng import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)

    def test_sensitive_to_path(self):
        assert derive_seed(5, "a") != derive_seed(5, "b")
        assert derive_seed(5, "a", 1) != derive_seed(5, "a", 2)

    def test_sensitive_to_base(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_children_are_independent_of_sibling_consumption(self):
        root_a = RandomSource(7)
        root_b = RandomSource(7)
        # Consuming one child's stream must not shift a differently named child.
        child_a1 = root_a.child("x")
        _ = [child_a1.random() for _ in range(10)]
        value_a = root_a.child("y").random()
        value_b = root_b.child("y").random()
        assert value_a == value_b

    def test_child_streams_differ(self):
        root = RandomSource(3)
        assert root.child("a").random() != root.child("b").random()

    def test_integers_bounds(self):
        rng = RandomSource(1)
        values = [rng.integers(2, 6) for _ in range(200)]
        assert min(values) >= 2
        assert max(values) <= 5

    def test_choice_weighted(self):
        rng = RandomSource(0)
        picks = [rng.choice(["a", "b"], p=[0.99, 0.01]) for _ in range(200)]
        assert picks.count("a") > 150

    def test_shuffle_in_place_preserves_elements(self):
        rng = RandomSource(5)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_wrapping_generator(self):
        generator = np.random.default_rng(0)
        source = RandomSource(generator, name="wrapped")
        assert source.seed is None
        assert 0.0 <= source.random() < 1.0

    def test_spawn_deterministic(self):
        assert RandomSource(13).spawn(2).random() == RandomSource(13).spawn(2).random()
        assert RandomSource(13).spawn_seed(2) == RandomSource(13).spawn_seed(2)

    def test_spawn_streams_differ_by_key(self):
        root = RandomSource(13)
        assert root.spawn(0).random() != root.spawn(1).random()

    def test_spawn_independent_of_consumption_and_order(self):
        root_a = RandomSource(21)
        root_b = RandomSource(21)
        # Draining the root and sibling spawns must not shift spawn(5).
        _ = [root_a.random() for _ in range(7)]
        _ = [root_a.spawn(0).random() for _ in range(3)]
        assert root_a.spawn(5).random() == root_b.spawn(5).random()

    def test_spawn_namespace_distinct_from_child(self):
        root = RandomSource(3)
        assert root.spawn("x").random() != root.child("x").random()
        assert root.spawn_seed("x") != derive_seed(3, root.name, "x")

    def test_copy_constructor_shares_stream(self):
        original = RandomSource(9, name="orig")
        alias = RandomSource(original)
        assert alias.name == "orig"
        # The alias shares the generator object.
        assert alias.generator is original.generator
