"""Golden-equivalence tests for the columnar data plane.

The columnar pipeline (CircuitBatch synthesis, vectorised execution-time
aggregation, columnar TraceDataset, npz cache) must be *value-identical* to
the row-at-a-time reference path (`repro.workloads.rowpath`) for the same
seed — same random draws, same floats, same records, same figure data.
"""

import numpy as np
import pytest

from repro.analysis.figures import trace_figure_suite
from repro.cloud.job import CircuitBatch
from repro.cloud.service import QuantumCloudService
from repro.runner.cache import TraceCache, config_fingerprint
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    expected_pending_estimator,
    plan_submissions,
    record_for,
)
from repro.workloads.rowpath import (
    RowPathSynthesizer,
    figure_suite_rowpath,
    record_for_rowpath,
)
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=90, months=5, seed=23)


@pytest.fixture(scope="module")
def config():
    return TraceGeneratorConfig(**CONFIG)


@pytest.fixture(scope="module")
def fleet(config):
    return config.build_fleet()


@pytest.fixture(scope="module")
def golden_jobs(config, fleet):
    """(columnar jobs, rowpath jobs) synthesised from the same plan."""
    plan = plan_submissions(config)
    columnar = JobSynthesizer(config, fleet,
                              expected_pending_estimator(fleet))
    rowpath = RowPathSynthesizer(config, fleet,
                                 expected_pending_estimator(fleet))
    return ([columnar.synthesise(p) for p in plan],
            [rowpath.synthesise(p) for p in plan])


def _simulate(config, fleet, jobs):
    service = QuantumCloudService(fleet, seed=config.seed)
    submitted = [job for job in jobs if job is not None]
    for job in submitted:
        service.submit(job)
    service.drain()
    return submitted


@pytest.fixture(scope="module")
def golden_records(config, fleet, golden_jobs):
    """(columnar records, rowpath records) after full simulation."""
    columnar_jobs, rowpath_jobs = golden_jobs
    columnar = [record_for(job, fleet)
                for job in _simulate(config, fleet, columnar_jobs)]
    rowpath = [record_for_rowpath(job, fleet)
               for job in _simulate(config, fleet, rowpath_jobs)]
    return columnar, rowpath


class TestSynthesisEquivalence:
    def test_same_jobs_synthesised(self, golden_jobs):
        columnar_jobs, rowpath_jobs = golden_jobs
        assert len(columnar_jobs) == len(rowpath_jobs)
        assert any(job is not None for job in columnar_jobs)
        for new, old in zip(columnar_jobs, rowpath_jobs):
            assert (new is None) == (old is None)
            if new is None:
                continue
            assert new.job_id == old.job_id
            assert new.backend_name == old.backend_name
            assert new.provider == old.provider
            assert new.shots == old.shots
            assert new.compile_seconds == old.compile_seconds
            assert new.metadata == old.metadata

    def test_circuit_batches_match_spec_lists_exactly(self, golden_jobs):
        columnar_jobs, rowpath_jobs = golden_jobs
        checked = 0
        for new, old in zip(columnar_jobs, rowpath_jobs):
            if new is None:
                continue
            assert isinstance(new.circuits, CircuitBatch)
            assert isinstance(old.circuits, list)
            assert len(new.circuits) == len(old.circuits)
            assert list(new.circuits) == old.circuits
            checked += 1
        assert checked > 0

    def test_batch_aggregates_match_loops(self, golden_jobs):
        columnar_jobs, _ = golden_jobs
        for job in columnar_jobs:
            if job is None:
                continue
            specs = list(job.circuits)
            assert job.max_width == max(s.width for s in specs)
            assert job.total_gates == sum(s.num_gates for s in specs)
            assert job.total_cx == sum(s.cx_count for s in specs)
            assert job.mean_depth == sum(s.depth for s in specs) / len(specs)


class TestSimulationEquivalence:
    def test_records_value_identical(self, golden_records):
        columnar, rowpath = golden_records
        assert len(columnar) == len(rowpath)
        assert columnar == rowpath  # exact float equality via dataclass eq

    def test_run_times_bit_exact(self, golden_records):
        columnar, rowpath = golden_records
        for new, old in zip(columnar, rowpath):
            assert new.run_seconds == old.run_seconds
            assert new.queue_seconds == old.queue_seconds


class TestDatasetAndCacheEquivalence:
    def test_columnar_dataset_round_trips_records(self, golden_records):
        columnar, _ = golden_records
        trace = TraceDataset(columnar, metadata={"seed": CONFIG["seed"]})
        assert trace.records == columnar
        assert [trace[i] for i in range(len(trace))] == columnar

    def test_npz_round_trip_identical_to_json_path(self, golden_records,
                                                   tmp_path):
        columnar, _ = golden_records
        trace = TraceDataset(columnar, metadata={"seed": CONFIG["seed"]})
        json_path = tmp_path / "trace.json"
        npz_path = tmp_path / "trace.npz"
        trace.to_json(json_path)
        trace.to_npz(npz_path)
        from_json = TraceDataset.from_json(json_path)
        from_npz = TraceDataset.from_npz(npz_path)
        assert from_npz.records == columnar
        assert from_npz.records == from_json.records
        assert from_npz.metadata == from_json.metadata

    def test_npz_bytes_deterministic(self, golden_records, tmp_path):
        columnar, _ = golden_records
        trace = TraceDataset(columnar, metadata={"seed": CONFIG["seed"]})
        first = tmp_path / "a.npz"
        second = tmp_path / "b.npz"
        trace.to_npz(first)
        trace.to_npz(second)
        assert first.read_bytes() == second.read_bytes()

    def test_trace_cache_serves_npz_and_legacy_json(self, golden_records,
                                                    config, tmp_path):
        columnar, _ = golden_records
        trace = TraceDataset(columnar, metadata={"seed": CONFIG["seed"]})
        cache = TraceCache(tmp_path / "cache")
        key = config_fingerprint(config)
        path = cache.put(key, trace)
        assert path.suffix == ".npz"
        assert cache.get(key).records == columnar

        legacy = TraceCache(tmp_path / "legacy")
        legacy.root.mkdir(parents=True)
        trace.to_json(legacy.legacy_path_for(key))
        assert legacy.get(key).records == columnar
        assert legacy.get_bytes(key) is not None

    def test_trace_cache_treats_corrupt_entries_as_misses(self, config,
                                                          tmp_path):
        cache = TraceCache(tmp_path / "cache")
        key = config_fingerprint(config)
        cache.root.mkdir(parents=True)
        # Not a zip at all, and a valid zip header with garbage after it:
        # both must miss, not raise.
        cache.path_for(key).write_bytes(b"not an npz")
        assert cache.get(key) is None
        cache.path_for(key).write_bytes(b"PK\x03\x04truncated-garbage")
        assert cache.get(key) is None
        assert cache.stats()["misses"] == 2


class TestAnalysisEquivalence:
    def test_figure_suites_value_identical(self, golden_records):
        columnar, _ = golden_records
        trace = TraceDataset(columnar)
        new_suite = trace_figure_suite(trace)
        old_suite = figure_suite_rowpath(columnar)
        assert set(new_suite) == set(old_suite)
        for key in old_suite:
            new_value, old_value = new_suite[key], old_suite[key]
            if key == "fig15_features":
                assert np.array_equal(new_value[0], old_value[0])
                assert np.array_equal(new_value[1], old_value[1])
            elif isinstance(old_value, np.ndarray):
                assert np.array_equal(new_value, old_value), key
            else:
                assert new_value == old_value, key
