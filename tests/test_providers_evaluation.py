"""Tests for the access-class comparison and the prediction error metrics."""

import numpy as np
import pytest

from repro.analysis.providers import (
    access_class_profiles,
    public_to_privileged_queue_ratio,
)
from repro.core.exceptions import AnalysisError, PredictionError
from repro.prediction import RuntimePredictionStudy
from repro.prediction.evaluation import (
    PredictionErrorReport,
    evaluate_study,
    mean_absolute_error,
    mean_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.workloads.trace import TraceDataset


class TestAccessClassProfiles:
    def test_both_classes_present(self, medium_trace):
        profiles = access_class_profiles(medium_trace)
        assert set(profiles) == {"public", "privileged"}
        shares = sum(p.job_share for p in profiles.values())
        assert shares == pytest.approx(1.0)

    def test_public_queues_longer(self, medium_trace):
        """Fig. 10's contrast between access classes."""
        profiles = access_class_profiles(medium_trace)
        assert (profiles["public"].queue_minutes.median
                > profiles["privileged"].queue_minutes.median)
        assert public_to_privileged_queue_ratio(medium_trace) > 1.5

    def test_run_times_similar_across_classes(self, medium_trace):
        """Execution time is machine-overhead bound, not access bound."""
        profiles = access_class_profiles(medium_trace)
        ratio = (profiles["public"].run_minutes.median
                 / max(profiles["privileged"].run_minutes.median, 1e-9))
        assert 0.1 < ratio < 10.0

    def test_crossover_fraction_bounded(self, medium_trace):
        profiles = access_class_profiles(medium_trace)
        for profile in profiles.values():
            assert 0.0 <= profile.crossover_fraction <= 1.0

    def test_as_dict_keys(self, medium_trace):
        profile = access_class_profiles(medium_trace)["public"]
        payload = profile.as_dict()
        assert "median_queue_minutes" in payload
        assert payload["jobs"] == profile.jobs

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            access_class_profiles(TraceDataset())


class TestErrorMetrics:
    def test_known_values(self):
        actual = [1.0, 2.0, 3.0]
        predicted = [1.0, 3.0, 5.0]
        assert mean_absolute_error(actual, predicted) == pytest.approx(1.0)
        assert root_mean_squared_error(actual, predicted) == pytest.approx(
            np.sqrt(5.0 / 3.0))
        assert mean_absolute_percentage_error(actual, predicted) == pytest.approx(
            (0 + 0.5 + 2.0 / 3.0) / 3)

    def test_perfect_prediction(self):
        values = [0.5, 1.5, 7.0]
        assert mean_absolute_error(values, values) == 0.0
        assert root_mean_squared_error(values, values) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PredictionError):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(PredictionError):
            root_mean_squared_error([], [])

    def test_mape_all_zero_actuals_rejected(self):
        with pytest.raises(PredictionError):
            mean_absolute_percentage_error([0.0, 0.0], [1.0, 1.0])


class TestEvaluateStudy:
    def test_reports_for_fitted_study(self, medium_trace):
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        results = study.run(medium_trace)
        reports = evaluate_study(results)
        assert reports
        for report in reports.values():
            assert report.samples > 0
            assert report.mae_minutes >= 0
            assert report.rmse_minutes >= report.mae_minutes - 1e-9
            assert 0.0 <= report.relative_mae <= 1.5

    def test_absolute_errors_small_relative_to_range(self, medium_trace):
        """The Fig. 16 argument: even low-correlation machines have small MAE."""
        study = RuntimePredictionStudy(min_jobs_per_machine=40)
        reports = evaluate_study(study.run(medium_trace))
        worst = min(reports.values(), key=lambda r: r.correlation)
        assert worst.relative_mae < 0.5

    def test_empty_results_rejected(self):
        with pytest.raises(PredictionError):
            evaluate_study({})

    def test_report_as_dict(self):
        report = PredictionErrorReport(machine="m", samples=10, correlation=0.9,
                                       mae_minutes=0.5, rmse_minutes=0.7,
                                       mape=0.2, actual_range_minutes=10.0)
        payload = report.as_dict()
        assert payload["relative_mae"] == pytest.approx(0.05)
