"""End-to-end tests for the study-service gateway.

An in-process :class:`~repro.service.gateway.StudyService` plus its HTTP
server (bound to an ephemeral port) is exercised through the stdlib
:class:`~repro.service.client.StudyServiceClient` — the exact stack
``python -m repro serve`` / ``submit`` / ``fetch`` runs.  Covers the
submit → stream → fetch round trip (byte-identical to the batch
``run-scenarios`` path), two tenants sharing one worker pool, quota and
cancellation semantics of the job registry, and submission validation.
"""

import threading

import pytest

from repro.runner import TraceCache
from repro.scenarios import ScenarioEngine, resolve_scenarios
from repro.service import (
    GatewayError,
    JobQuotaExceeded,
    JobRegistry,
    ServiceError,
    StudyService,
    StudyServiceClient,
    UnknownJobError,
    comparison_key,
    resolve_submission,
)
from repro.workloads.generator import TraceGeneratorConfig

CONFIG = dict(total_jobs=60, months=3, seed=11)
SUITE = ["baseline", "demand-surge"]

INLINE_SUITE = {
    "study": {"total_jobs": 50, "months": 3, "seed": 4},
    "scenarios": [
        {"name": "base", "description": "the baseline"},
        {"name": "surge", "perturbations": [
            {"kind": "demand_surge", "scale": 1.4, "start_month": 1},
        ]},
    ],
}


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    """(service, client factory) — one in-process server for the module."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    service = StudyService(
        TraceGeneratorConfig(**CONFIG),
        workers=2,
        cache_dir=cache_dir,
        tenant_quota=4,
        executors=2,
        stream_idle_seconds=0.2,
    )
    service.start()
    server = service.make_server("127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield service, lambda tenant: StudyServiceClient(url, tenant=tenant)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
        thread.join(timeout=10)


class TestRoundTrip:
    def test_submit_stream_fetch(self, gateway, tmp_path):
        service, make_client = gateway
        client = make_client("alice")

        snapshot = client.submit({"scenarios": SUITE})
        job_id = snapshot["job"]
        assert snapshot["state"] in ("queued", "running")

        events = list(client.events(job_id))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "done"
        # Structured runner progress rides along on the stream.
        progress = [event for event in events if event["event"] == "progress"]
        assert any(event["kind"] == "shard-done" for event in progress)
        assert any(event["kind"] == "suite-done" for event in progress)
        shard_done = [e for e in progress if e["kind"] == "shard-done"]
        assert all(e["completed"] <= e["total"] for e in shard_done)
        # Partial per-scenario results are labelled with scenario names.
        partial = {event["scenario"]: event for event in events
                   if event["event"] == "scenario-done"}
        assert set(partial) == set(SUITE)

        final = client.wait(job_id)
        assert final["state"] == "done"
        result = final["result"]
        assert set(result["fingerprints"]) == set(SUITE)
        assert "comparison_key" in result

        # Fetched trace bytes are byte-identical to what the batch
        # run-scenarios path caches under the same fingerprint.
        batch_cache = tmp_path / "batch-cache"
        engine = ScenarioEngine(TraceGeneratorConfig(**CONFIG), workers=1,
                                num_shards=1, cache=batch_cache)
        engine.run(resolve_scenarios(SUITE))
        for name in SUITE:
            fingerprint = result["fingerprints"][name]
            served = client.fetch_trace(fingerprint)
            batch_path = TraceCache(batch_cache).existing_path_for(
                fingerprint)
            assert batch_path is not None, name
            assert served == batch_path.read_bytes(), name

        comparison = client.fetch_comparison(result["comparison_key"])
        assert comparison["comparison_key"] == result["comparison_key"]
        assert "comparison" in comparison

    def test_resubmission_is_served_from_cache(self, gateway):
        service, make_client = gateway
        first = make_client("alice").wait(
            make_client("alice").submit({"scenarios": SUITE})["job"])
        client = make_client("bob")  # a different tenant hits the same cache
        final = client.wait(client.submit({"scenarios": SUITE})["job"])
        result = final["result"]
        assert result["cache_hits"] == len(SUITE)
        assert result["comparison_key"] == \
            first["result"]["comparison_key"]
        assert result["fingerprints"] == first["result"]["fingerprints"]

    def test_inline_suite_submission(self, gateway):
        service, make_client = gateway
        client = make_client("alice")
        final = client.wait(client.submit({"suite": INLINE_SUITE})["job"])
        assert final["state"] == "done"
        assert set(final["result"]["fingerprints"]) == {"base", "surge"}
        # The [study] table shaped the configs: base ran 50 jobs.
        base = next(s for s in final["result"]["scenarios"]
                    if s["scenario"] == "base")
        assert base["jobs"] == 50

    def test_two_tenants_share_one_pool(self, gateway):
        service, make_client = gateway
        alice, bob = make_client("t-alice"), make_client("t-bob")
        job_a = alice.submit({"scenarios": ["baseline"]})["job"]
        job_b = bob.submit({"scenarios": ["machine-outage"]})["job"]
        final_a, final_b = alice.wait(job_a), bob.wait(job_b)
        assert final_a["state"] == final_b["state"] == "done"
        assert final_a["tenant"] == "t-alice"
        assert final_b["tenant"] == "t-bob"
        # Tenant filtering on the listing.
        mine = alice.jobs("t-alice")
        assert {job["tenant"] for job in mine} == {"t-alice"}
        assert job_a in {job["job"] for job in mine}
        assert job_b not in {job["job"] for job in mine}

    def test_event_stream_resumes_with_since(self, gateway):
        service, make_client = gateway
        client = make_client("alice")
        final = client.wait(client.submit({"scenarios": ["baseline"]})["job"])
        events = list(client.events(final["job"]))
        tail = list(client.events(final["job"], since=events[2]["seq"]))
        assert tail == events[2:]


class TestHttpErrors:
    def test_unknown_job_is_404(self, gateway):
        _, make_client = gateway
        with pytest.raises(GatewayError) as excinfo:
            make_client("alice").job("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_trace_and_comparison_are_404(self, gateway):
        _, make_client = gateway
        client = make_client("alice")
        with pytest.raises(GatewayError) as excinfo:
            client.fetch_trace("no-such-fingerprint")
        assert excinfo.value.status == 404
        with pytest.raises(GatewayError) as excinfo:
            client.fetch_comparison("no-such-key")
        assert excinfo.value.status == 404

    def test_quota_exceeded_is_429_and_cancel_frees_slot(self, tmp_path):
        # Executors never started: submissions stay queued, so the quota
        # and the cancel-frees-a-slot path are exercised deterministically.
        service = StudyService(TraceGeneratorConfig(**CONFIG),
                               cache_dir=tmp_path, tenant_quota=2)
        server = service.make_server("127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = StudyServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", tenant="acme")
        try:
            first = client.submit({"scenarios": ["baseline"]})
            client.submit({"scenarios": ["demand-surge"]})
            with pytest.raises(GatewayError) as excinfo:
                client.submit({"scenarios": ["machine-outage"]})
            assert excinfo.value.status == 429
            cancelled = client.cancel(first["job"])
            assert cancelled["state"] == "cancelled"
            replacement = client.submit({"scenarios": ["machine-outage"]})
            assert replacement["state"] == "queued"
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            thread.join(timeout=10)

    def test_malformed_submission_is_400(self, gateway):
        _, make_client = gateway
        client = make_client("alice")
        with pytest.raises(GatewayError) as excinfo:
            client.submit({"scenarios": ["no-such-scenario"]})
        assert excinfo.value.status == 400
        with pytest.raises(GatewayError) as excinfo:
            client.submit({"bogus-key": 1})
        assert excinfo.value.status == 400

    def test_result_endpoint_serves_finished_jobs(self, gateway):
        _, make_client = gateway
        client = make_client("alice")
        final = client.wait(client.submit({"scenarios": ["baseline"]})["job"])
        assert client.result(final["job"])["state"] == "done"

    def test_health_and_stats(self, gateway):
        service, make_client = gateway
        client = make_client("alice")
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["workers"] == service.pool.workers
        assert stats["registry"]["tenant_quota"] == 4
        assert stats["store"]["entries"] >= 0
        assert stats["pool"]["workers"] == service.pool.workers
        assert stats["pool"]["queue_depth"] >= 0
        assert stats["pool"]["tasks_completed"] \
            <= stats["pool"]["tasks_submitted"]
        per_tenant = stats["registry"]["per_tenant"]
        for counts in per_tenant.values():
            assert set(counts) == {"active", "completed"}

    def test_metrics_exposition_parses_and_is_monotonic(self, gateway):
        from repro.telemetry import parse_prometheus_text

        service, make_client = gateway
        client = make_client("alice")
        first = parse_prometheus_text(client.metrics())
        # Submitting one more job moves job counters; every counter
        # sample must be monotonically non-decreasing across scrapes.
        client.submit({"scenarios": ["baseline"], "compare": False})
        second = parse_prometheus_text(client.metrics())
        for family in ("repro_cache_misses_total",
                       "repro_residency_spills_total",
                       "repro_pool_tasks_total",
                       "repro_jobs_submitted_total",
                       "repro_gateway_requests_total"):
            assert any(name == family or name.startswith(family)
                       for name in second), family
        for name, series in first.items():
            if not name.endswith("_total"):
                continue
            for labels, value in series.items():
                assert second[name][labels] >= value, (name, labels)

    def test_events_carry_elapsed_and_queue_depth(self, gateway):
        service, make_client = gateway
        client = make_client("alice")
        snapshot = client.submit({"scenarios": ["baseline"],
                                  "compare": False})
        events = list(client.events(snapshot["job"]))
        assert events
        for event in events:
            assert event["elapsed"] >= 0
            assert event["queue_depth"] >= 0
        elapsed = [event["elapsed"] for event in events]
        assert elapsed == sorted(elapsed)


class TestRegistrySemantics:
    """Quota, fairness and cancellation — deterministic, no executors."""

    def test_quota_and_cancel_frees_slot(self):
        registry = JobRegistry(tenant_quota=2)
        one = registry.submit("acme", {"n": 1})
        registry.submit("acme", {"n": 2})
        with pytest.raises(JobQuotaExceeded):
            registry.submit("acme", {"n": 3})
        # Other tenants have their own quota.
        registry.submit("other", {"n": 1})
        # Cancelling a queued job frees the slot immediately.
        cancelled = registry.cancel(one.job_id)
        assert cancelled.state == "cancelled"
        replacement = registry.submit("acme", {"n": 4})
        assert replacement.state == "queued"
        # The cancelled job never reaches an executor.
        taken = [registry.take(timeout=0.1) for _ in range(3)]
        assert one.job_id not in {job.job_id for job in taken if job}

    def test_round_robin_across_tenants(self):
        registry = JobRegistry(tenant_quota=8)
        for index in range(3):
            registry.submit("a", {"n": index})
        for index in range(3):
            registry.submit("b", {"n": index})
        order = [registry.take(timeout=0.1).tenant for _ in range(6)]
        # FIFO per tenant, interleaved across tenants: no tenant serves
        # twice while the other still has queued work.
        assert order[:4] in (["a", "b", "a", "b"], ["b", "a", "b", "a"])

    def test_cancel_running_sets_flag(self):
        registry = JobRegistry()
        registry.submit("acme", {"n": 1})
        job = registry.take(timeout=0.1)
        assert job.state == "running"
        registry.cancel(job.job_id)
        assert job.cancel_requested
        assert job.state == "running"  # the runner aborts between studies
        registry.finish(job, "cancelled")
        assert job.state == "cancelled"

    def test_unknown_job_raises(self):
        registry = JobRegistry()
        with pytest.raises(UnknownJobError):
            registry.get("job-000042")

    def test_job_stream_ends_after_terminal_event(self):
        registry = JobRegistry()
        job = registry.submit("acme", {"n": 1})
        registry.take(timeout=0.1)
        registry.finish(job, "done", result={"ok": True})
        events = [event for event in job.stream(idle=0.05)
                  if event is not None]
        assert [event["event"] for event in events] == \
            ["queued", "started", "done"]


class TestResolveSubmission:
    def test_builtin_names_and_overrides(self):
        base, scenarios = resolve_submission(
            {"scenarios": ["baseline"], "study": {"total_jobs": 99}},
            TraceGeneratorConfig(**CONFIG))
        assert base.total_jobs == 99
        assert base.months == CONFIG["months"]
        assert [scenario.name for scenario in scenarios] == ["baseline"]

    def test_inline_suite_with_sweep_and_replicates(self):
        payload = {
            "suite": INLINE_SUITE,
            "sweep": ["backlog_shift.scale=1,2"],
            "replicates": 2,
        }
        base, scenarios = resolve_submission(payload)
        assert base.total_jobs == 50  # the suite's [study] table applied
        names = [scenario.name for scenario in scenarios]
        # 2 suite scenarios + 2 sweep points, each twice (replicates).
        assert len(names) == 8
        assert "sweep@scale=1" in names and "sweep@scale=2" in names
        assert "base#r1" in names  # the replicate re-roll of the baseline

    def test_rejects_unknown_keys(self):
        with pytest.raises(ServiceError):
            resolve_submission({"nope": 1})
        with pytest.raises(ServiceError):
            resolve_submission({"study": {"bogus": 1}})
        with pytest.raises(ServiceError):
            resolve_submission({"scenarios": "baseline"})
        with pytest.raises(ServiceError):
            resolve_submission({"sweep": "backlog_shift.scale=1,2"})

    def test_comparison_key_is_order_sensitive_content_hash(self):
        triples = [("a", "f1", None), ("b", "f2", "a")]
        assert comparison_key(triples) == comparison_key(list(triples))
        assert comparison_key(triples) != comparison_key(triples[::-1])
        assert len(comparison_key(triples)) == 24
