"""Tests for repro.analysis.stats and repro.analysis.report."""

import numpy as np
import pytest

from repro.analysis.report import FigureSeries, render_series, render_table
from repro.analysis.stats import (
    _sorted_percentile,
    coefficient_of_variation,
    cumulative_fraction_below,
    histogram,
    linear_fit,
    pearson_correlation,
    percentile,
    summarize,
)
from repro.core.exceptions import AnalysisError


class TestSummaries:
    def test_summarize_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.minimum == 1 and summary.maximum == 5

    def test_summarize_drops_none(self):
        summary = summarize([1.0, None, 3.0])
        assert summary.count == 2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])
        with pytest.raises(AnalysisError):
            percentile([], 50)

    def test_percentile_bounds(self):
        with pytest.raises(AnalysisError):
            percentile([1, 2], 120)
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_cumulative_fraction(self):
        assert cumulative_fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_histogram(self):
        counts, edges = histogram([1, 2, 2, 3], bins=3, value_range=(1, 4))
        assert counts.sum() == 4
        assert len(edges) == 4

    def test_summarize_accepts_nan_sentinel_arrays(self):
        summary = summarize(np.asarray([1.0, np.nan, 3.0]))
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)

    def test_sorted_percentile_matches_numpy_exactly(self):
        """The small-sample fast path must be bit-identical to np.percentile."""
        rng = np.random.default_rng(17)
        for size in (1, 2, 3, 7, 40, 241, 4096, 5000):
            sample = rng.normal(size=size) * 37.5
            ordered = np.sort(sample)
            for q in (0.0, 25.0, 33.3, 50.0, 75.0, 90.0, 99.9, 100.0):
                assert _sorted_percentile(ordered, q) == \
                    float(np.percentile(sample, q))

    def test_summarize_percentiles_match_numpy(self):
        rng = np.random.default_rng(3)
        for size in (5, 100, 5000):  # spans both summarize code paths
            sample = rng.exponential(size=size)
            summary = summarize(sample)
            assert summary.p25 == float(np.percentile(sample, 25))
            assert summary.median == float(np.percentile(sample, 50))
            assert summary.p75 == float(np.percentile(sample, 75))
            assert summary.p90 == float(np.percentile(sample, 90))


class TestCorrelationAndFits:
    def test_perfect_correlation(self):
        x = [1, 2, 3, 4, 5]
        assert pearson_correlation(x, [2 * v for v in x]) == pytest.approx(1.0)
        assert pearson_correlation(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_zero_variance_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            pearson_correlation([1, 2], [1])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.random(50)
        y = 3 * x + rng.random(50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_linear_fit_recovers_slope(self):
        x = np.arange(10.0)
        slope, intercept = linear_fit(x, 2.5 * x + 1.0)
        assert slope == pytest.approx(2.5)
        assert intercept == pytest.approx(1.0)

    def test_linear_fit_needs_two_points(self):
        with pytest.raises(AnalysisError):
            linear_fit([1], [2])


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table("demo", [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title + header + separator + two rows

    def test_render_table_truncation(self):
        rows = [{"v": i} for i in range(10)]
        text = render_table("demo", rows, max_rows=3)
        assert "7 more rows" in text

    def test_render_empty_table(self):
        assert "(no data)" in render_table("demo", [])

    def test_figure_series(self):
        series = FigureSeries("Fig. X", "demo", "x", "y")
        series.add(1, 2.0)
        series.add(2, 3.0)
        rows = series.as_rows()
        assert rows == [{"x": 1, "y": 2.0}, {"x": 2, "y": 3.0}]
        assert "Fig. X" in render_series(series)
