"""Tests for the parallel sharded study runner (repro.runner)."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import summarize
from repro.core.exceptions import WorkloadError
from repro.runner import (
    StudyRunner,
    TraceCache,
    config_fingerprint,
    plan_machine_groups,
    plan_shards,
    run_study,
)
from repro.workloads.generator import (
    TraceGeneratorConfig,
    job_id_for_index,
    plan_submissions,
)
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=100, months=5, seed=19)


@pytest.fixture(scope="module")
def reference_result():
    """The single-shard, single-worker run everything is compared against."""
    return run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                     num_shards=1, use_cache=False)


class TestShardPlanning:
    def test_shards_partition_the_plan(self):
        config = TraceGeneratorConfig(**CONFIG)
        submissions = plan_submissions(config)
        shards = plan_shards(config, submissions, 4)
        assert len(shards) == 4
        indices = sorted(
            planned.job_index for shard in shards for planned in shard.submissions
        )
        assert indices == sorted(p.job_index for p in submissions)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_shards_rejected(self):
        config = TraceGeneratorConfig(**CONFIG)
        with pytest.raises(WorkloadError):
            plan_shards(config, plan_submissions(config), 0)

    def test_machine_groups_balance_and_cover(self):
        counts = {"a": 50, "b": 30, "c": 20, "d": 10, "e": 0}
        groups = plan_machine_groups(counts, 2)
        machines = sorted(m for g in groups for m in g.machines)
        assert machines == ["a", "b", "c", "d"]  # zero-job machine dropped
        assert sorted(g.expected_jobs for g in groups) == [50, 60]
        assert groups == plan_machine_groups(counts, 2)

    def test_more_groups_than_machines(self):
        groups = plan_machine_groups({"a": 5, "b": 1}, 8)
        assert len(groups) == 2


class TestShardInvariance:
    """Same seed => same merged trace, no matter how the work is split."""

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_merged_job_counts_invariant(self, reference_result, num_shards):
        result = run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                           num_shards=num_shards, use_cache=False)
        assert len(result.trace) == len(reference_result.trace)
        assert result.trace.status_counts() == \
            reference_result.trace.status_counts()
        assert result.trace.summary() == reference_result.trace.summary()

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_queue_time_summaries_invariant(self, reference_result, num_shards):
        result = run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                           num_shards=num_shards, use_cache=False)
        ours = summarize(result.trace.numeric_column("queue_seconds"))
        reference = summarize(
            reference_result.trace.numeric_column("queue_seconds"))
        assert ours.as_dict() == reference.as_dict()

    def test_records_identical_across_shard_counts(self, reference_result):
        result = run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                           num_shards=4, use_cache=False)
        assert result.trace.records == reference_result.trace.records

    def test_job_ids_are_deterministic(self, reference_result):
        ids = {r.job_id for r in reference_result.trace}
        assert job_id_for_index(0) in ids
        assert len(ids) == len(reference_result.trace)


class TestWorkerInvariance:
    def test_multiprocess_run_is_byte_identical(self, reference_result,
                                                tmp_path):
        result = run_study(config=TraceGeneratorConfig(**CONFIG), workers=2,
                           num_shards=4, use_cache=False)
        assert result.trace.records == reference_result.trace.records
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        reference_result.trace.to_json(serial_path)
        result.trace.to_json(parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_timings_reported(self, reference_result):
        for stage in ("plan", "synthesis", "simulation", "merge", "total"):
            assert stage in reference_result.timings


class TestTraceCache:
    def test_cache_roundtrip_and_hit_is_byte_identical(self, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        cache = TraceCache(tmp_path / "cache")
        first = StudyRunner(config, workers=1, cache=cache).run()
        assert not first.cache_hit
        cached_bytes = cache.get_bytes(first.cache_key)
        assert cached_bytes is not None

        second = StudyRunner(config, workers=1, cache=cache).run()
        assert second.cache_hit
        assert second.cache_path == first.cache_path
        assert cache.get_bytes(second.cache_key) == cached_bytes
        assert second.trace.records == first.trace.records
        assert cache.stats()["hits"] >= 1

    def test_no_cache_bypasses_lookup(self, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        cache = TraceCache(tmp_path / "cache")
        StudyRunner(config, workers=1, cache=cache).run()
        again = StudyRunner(config, workers=1, cache=cache).run(use_cache=False)
        assert not again.cache_hit

    def test_fingerprint_changes_with_config(self):
        base = TraceGeneratorConfig(**CONFIG)
        assert config_fingerprint(base) == \
            config_fingerprint(TraceGeneratorConfig(**CONFIG))
        for change in (dict(total_jobs=101), dict(seed=20), dict(months=6)):
            other = TraceGeneratorConfig(**{**CONFIG, **change})
            assert config_fingerprint(other) != config_fingerprint(base)


class TestCommandLine:
    def test_run_study_writes_trace_and_caches(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "run-study", "--jobs", "40", "--months", "3", "--seed", "5",
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(out), "--quiet",
        ])
        assert code == 0
        trace = TraceDataset.from_json(out)
        assert len(trace) == 40
        capsys.readouterr()  # drain the first run's output
        code = main([
            "run-study", "--jobs", "40", "--months", "3", "--seed", "5",
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            "--quiet",
        ])
        assert code == 0
        summary = json.loads(
            "".join(line for line in capsys.readouterr().out.splitlines()
                    if not line.startswith("trace written"))
        )
        assert summary["cache_hit"] is True

    def test_figures_from_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        run_study(config=TraceGeneratorConfig(total_jobs=40, months=3, seed=5),
                  workers=1, use_cache=False).trace.to_json(trace_path)
        figures_path = tmp_path / "figures.json"
        code = main([
            "figures", "--trace", str(trace_path),
            "--output", str(figures_path), "--quiet",
        ])
        assert code == 0
        payload = json.loads(figures_path.read_text())
        assert payload["trace_summary"]["jobs"] == 40
        assert "fig3_queue_report" in payload

    def test_bench_writes_artifact(self, tmp_path):
        artifact = tmp_path / "BENCH_runner.json"
        code = main([
            "bench", "--jobs", "30", "--months", "2", "--seed", "5",
            "--worker-counts", "1", "--output", str(artifact), "--quiet",
        ])
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["benchmark"] == "runner_scaling"
        assert payload["runs"]["1"]["seconds"] > 0
        assert payload["best_speedup"] >= 0
