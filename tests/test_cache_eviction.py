"""Tests for trace-cache accounting, LRU eviction, and the result store.

Covers :class:`~repro.runner.cache.TraceCache`'s hit/miss/eviction
counters, entry enumeration, max-bytes LRU pruning (recency = file mtime,
bumped on every hit), the :class:`~repro.service.store.ResultStore`
layered on top (comparisons share the byte budget with traces), and the
``python -m repro cache`` subcommand.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.runner import TraceCache, config_fingerprint, run_study
from repro.service import ResultStore
from repro.workloads.generator import TraceGeneratorConfig

CONFIGS = [TraceGeneratorConfig(total_jobs=40, months=2, seed=seed)
           for seed in (1, 2, 3)]


@pytest.fixture(scope="module")
def filled_cache_dir(tmp_path_factory):
    """A cache holding three distinct small traces, oldest first."""
    root = tmp_path_factory.mktemp("trace-cache")
    cache = TraceCache(root)
    for index, config in enumerate(CONFIGS):
        run_study(config=config, workers=1, num_shards=1, cache_dir=root)
        # Spread mtimes so LRU order is deterministic regardless of how
        # fast the traces were generated.
        path = cache.existing_path_for(config_fingerprint(config))
        stamp = 1_000_000 + index * 1000
        os.utime(path, (stamp, stamp))
    return root


class TestTraceCacheEviction:
    def test_entries_are_lru_ordered(self, filled_cache_dir):
        cache = TraceCache(filled_cache_dir)
        entries = cache.entries()
        assert len(entries) == 3
        assert [e.key for e in entries] == \
            [config_fingerprint(c) for c in CONFIGS]
        assert all(e.size_bytes > 0 for e in entries)
        assert cache.total_bytes() == sum(e.size_bytes for e in entries)

    def test_hits_bump_recency(self, filled_cache_dir):
        cache = TraceCache(filled_cache_dir)
        oldest = config_fingerprint(CONFIGS[0])
        assert cache.get(oldest) is not None
        assert cache.entries()[-1].key == oldest  # now most recent
        # restore the stamped order for the other tests
        path = cache.existing_path_for(oldest)
        os.utime(path, (1_000_000, 1_000_000))

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        source = TraceCache(tmp_path)
        for index, config in enumerate(CONFIGS):
            run_study(config=config, workers=1, num_shards=1,
                      cache_dir=tmp_path)
            path = source.existing_path_for(config_fingerprint(config))
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        cache = TraceCache(tmp_path)
        entries = cache.entries()
        keep = entries[-1]  # most recently used survives
        evicted = cache.prune(keep.size_bytes)
        assert [e.key for e in evicted] == [e.key for e in entries[:2]]
        assert [e.key for e in cache.entries()] == [keep.key]
        assert cache.evictions == 2
        assert cache.get(entries[0].key) is None  # evicted → miss
        assert cache.stats()["evictions"] == 2
        assert cache.prune(keep.size_bytes) == []  # already under budget
        with pytest.raises(ValueError):
            cache.prune(-1)

    def test_hit_miss_counters(self, filled_cache_dir):
        cache = TraceCache(filled_cache_dir)
        key = config_fingerprint(CONFIGS[1])
        assert cache.get(key) is not None
        assert cache.get("no-such-key") is None
        assert cache.get_bytes(key) is not None
        assert cache.get_bytes("no-such-key") is None
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 2

    def test_evict_single_key(self, tmp_path):
        run_study(config=CONFIGS[0], workers=1, num_shards=1,
                  cache_dir=tmp_path)
        cache = TraceCache(tmp_path)
        key = config_fingerprint(CONFIGS[0])
        assert cache.evict(key)
        assert not cache.evict(key)  # already gone
        assert cache.entries() == []


class TestResultStore:
    def test_comparisons_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"comparison_key": "k1", "suite": {"studies": 2}}
        store.put_comparison("k1", payload)
        assert store.get_comparison("k1") == payload
        assert store.get_comparison("missing") is None
        stats = store.stats()
        assert stats["comparison_hits"] == 1
        assert stats["comparison_misses"] == 1

    def test_prune_spans_traces_and_comparisons(self, tmp_path):
        run_study(config=CONFIGS[0], workers=1, num_shards=1,
                  cache_dir=tmp_path)
        store = ResultStore(tmp_path)
        trace_key = config_fingerprint(CONFIGS[0])
        trace_path = store.trace_path(trace_key)
        os.utime(trace_path, (1_000_000, 1_000_000))  # trace is the LRU
        store.put_comparison("recent", {"comparison_key": "recent"})
        comparison_size = store.comparison_path_for("recent").stat().st_size
        evicted = store.prune(comparison_size)
        assert [entry.key for entry in evicted] == [trace_key]
        assert store.trace_bytes(trace_key) is None
        assert store.get_comparison("recent") is not None

    def test_unbudgeted_store_never_evicts(self, tmp_path):
        store = ResultStore(tmp_path)  # max_bytes=None
        store.put_comparison("k", {"comparison_key": "k"})
        assert store.prune() == []
        assert store.get_comparison("k") is not None

    def test_budget_enforced_on_put(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=0)
        store.put_comparison("k1", {"comparison_key": "k1"})
        # put_comparison prunes to the zero budget: nothing survives.
        assert store.entries() == []

    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=-1)


class TestCacheCli:
    def test_list_and_prune(self, tmp_path, capsys):
        for index, config in enumerate(CONFIGS[:2]):
            run_study(config=config, workers=1, num_shards=1,
                      cache_dir=tmp_path)
            path = TraceCache(tmp_path).existing_path_for(
                config_fingerprint(config))
            os.utime(path, (1_000_000 + index, 1_000_000 + index))

        assert main(["cache", "--cache-dir", str(tmp_path), "--list"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["entries"] == 2
        assert len(listing["cache"]) == 2
        assert listing["total_bytes"] > 0

        keep_bytes = listing["cache"][-1]["size_bytes"]
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune", "--max-bytes", str(keep_bytes)]) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert len(pruned["evicted"]) == 1
        assert pruned["evicted"][0]["key"] == listing["cache"][0]["key"]
        assert pruned["remaining_bytes"] <= keep_bytes

    def test_prune_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path), "--prune"]) == 2
        assert "--max-bytes" in capsys.readouterr().err
