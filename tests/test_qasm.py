"""Tests for repro.circuits.qasm."""

import math

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, qft_circuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.core.exceptions import CircuitError


class TestExport:
    def test_header_and_registers(self):
        text = to_qasm(QuantumCircuit(3, 2))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "creg c[2];" in text

    def test_gate_lines(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(math.pi / 4, 1)
        text = to_qasm(circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "rz(0.785398163397" in text

    def test_measure_line(self):
        text = to_qasm(QuantumCircuit(1).measure(0, 0))
        assert "measure q[0] -> c[0];" in text

    def test_barrier_line(self):
        text = to_qasm(QuantumCircuit(2).barrier())
        assert "barrier q[0],q[1];" in text


class TestRoundTrip:
    @pytest.mark.parametrize("circuit", [
        ghz_circuit(4),
        qft_circuit(4),
        QuantumCircuit(3).h(0).cx(0, 2).rz(0.25, 1).barrier().measure_all(),
    ])
    def test_round_trip_preserves_structure(self, circuit):
        restored = from_qasm(to_qasm(circuit))
        assert restored.num_qubits == circuit.num_qubits
        assert restored.gate_counts() == circuit.gate_counts()
        assert restored.depth() == circuit.depth()
        assert restored.cx_count == circuit.cx_count

    def test_round_trip_preserves_parameters(self):
        circuit = QuantumCircuit(1).rz(1.234567, 0).rx(-0.5, 0)
        restored = from_qasm(to_qasm(circuit))
        for original, parsed in zip(circuit.instructions, restored.instructions):
            assert parsed.gate.params == pytest.approx(original.gate.params)


class TestImportErrors:
    def test_missing_qreg_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm('OPENQASM 2.0;\ninclude "qelib1.inc";\nh q[0];\n')

    def test_unknown_gate_rejected(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmystery q[0];\n'
        with pytest.raises(CircuitError):
            from_qasm(text)

    def test_pi_expressions_supported(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(pi/2) q[0];\n'
        circuit = from_qasm(text)
        assert circuit.instructions[0].gate.params[0] == pytest.approx(math.pi / 2)

    def test_malformed_parameter_rejected(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(__import__) q[0];\n'
        with pytest.raises(CircuitError):
            from_qasm(text)

    def test_comments_ignored(self):
        text = ('OPENQASM 2.0;\n// a comment\nqreg q[1];\ncreg c[1];\n'
                'h q[0]; // trailing\n')
        assert from_qasm(text).gate_counts() == {"h": 1}
