"""Tests for the one-call figure reproduction (repro.analysis.figures)."""

import json

import pytest

from repro.analysis.figures import ReproductionReport, reproduce_all
from repro.core.exceptions import AnalysisError
from repro.workloads.trace import TraceDataset


class TestReproduceAll:
    def test_report_covers_every_trace_driven_figure(self, medium_trace, fleet):
        report = reproduce_all(medium_trace, fleet=fleet)
        assert report.trace_summary["jobs"] == len(medium_trace)
        assert report.fig2a_cumulative_trials
        assert abs(sum(report.fig2b_status.values()) - 1.0) < 1e-9
        assert report.fig3_queue_report["median_minutes"] > 0
        assert report.fig4_ratio_report["median_ratio"] > 0
        assert report.fig6_bisection
        assert report.fig8_utilization
        assert report.fig9_pending_jobs
        assert report.fig10_queue_by_machine
        assert report.fig11_per_circuit_queue
        assert 0 < report.fig12a_crossover["crossover_fraction"] < 1
        assert report.fig13_run_by_machine
        assert report.fig14_batch_trend["slope_minutes_per_circuit"] > 0

    def test_report_without_fleet_skips_fleet_figures(self, medium_trace):
        report = reproduce_all(medium_trace)
        assert report.fig6_bisection == []
        assert report.fig9_pending_jobs == {}
        assert report.fig2b_status  # trace-only figures still present

    def test_report_is_json_serialisable(self, medium_trace, fleet):
        report = reproduce_all(medium_trace, fleet=fleet)
        payload = json.dumps(report.as_dict())
        assert "fig14_batch_trend" in payload

    def test_render_contains_section_titles(self, medium_trace, fleet):
        text = reproduce_all(medium_trace, fleet=fleet).render()
        assert "Fig. 2a" in text
        assert "Fig. 12a" in text
        assert "Fig. 14" in text

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            reproduce_all(TraceDataset())

    def test_default_report_is_empty(self):
        report = ReproductionReport()
        assert report.as_dict()["fig2b_status"] == {}
