"""Tests for the scenario engine (repro.scenarios) and its determinism."""

import json

import pytest

from repro.core.exceptions import ScenarioError, WorkloadError
from repro.runner import run_study
from repro.runner.cache import config_fingerprint
from repro.scenarios import (
    BacklogShift,
    CalibrationDrift,
    DemandSurge,
    FailureRates,
    FleetChange,
    MachineOutage,
    PolicySwap,
    Scenario,
    ScenarioEngine,
    builtin_scenarios,
    load_suite,
    perturbation_from_dict,
    resolve_scenarios,
)
from repro.workloads.generator import ScenarioKnobs, TraceGeneratorConfig
from repro.workloads.users import MachineSelectionPolicy

CONFIG = dict(total_jobs=70, months=4, seed=13)

ACCEPTANCE_SCENARIOS = ("baseline", "demand-surge", "machine-outage",
                        "calibration-drift", "policy-swap")


@pytest.fixture(scope="module")
def base_config():
    return TraceGeneratorConfig(**CONFIG)


class TestCatalog:
    def test_builtin_catalog_covers_the_acceptance_set(self):
        catalog = builtin_scenarios()
        assert len(catalog) >= 5
        for name in ACCEPTANCE_SCENARIOS:
            assert name in catalog

    def test_every_builtin_describes_itself(self):
        for scenario in builtin_scenarios().values():
            assert scenario.describe()

    def test_resolve_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            resolve_scenarios(("no-such-scenario",))


class TestExpansion:
    def test_baseline_expands_to_the_plain_config(self, base_config):
        baseline = builtin_scenarios()["baseline"]
        assert baseline.is_baseline
        assert baseline.apply_to(base_config) == base_config
        assert config_fingerprint(baseline.apply_to(base_config)) == \
            config_fingerprint(base_config)

    def test_neutral_knobs_normalise_to_none(self, base_config):
        surged = DemandSurge(scale=1.0).apply(base_config)
        assert surged.scenario is None or surged.scenario.is_neutral()

    def test_distinct_scenarios_have_distinct_fingerprints(self, base_config):
        engine = ScenarioEngine(base_config)
        fingerprints = {
            name: engine.fingerprint(scenario)
            for name, scenario in builtin_scenarios().items()
        }
        assert len(set(fingerprints.values())) == len(fingerprints)

    def test_seed_override_changes_the_fingerprint(self, base_config):
        rerolled = Scenario("reroll", seed=CONFIG["seed"] + 1)
        assert config_fingerprint(rerolled.apply_to(base_config)) != \
            config_fingerprint(base_config)

    def test_perturbations_compose(self, base_config):
        scenario = Scenario("combo", perturbations=(
            DemandSurge(scale=1.5),
            CalibrationDrift(scale=2.0),
            BacklogShift(scale=2.0),
            FailureRates(error_probability=0.1),
            PolicySwap(policy="queue"),
        ))
        knobs = scenario.apply_to(base_config).scenario
        assert knobs.monthly_demand == (1.5,) * CONFIG["months"]
        assert knobs.calibration_drift_scale == 2.0
        assert knobs.backlog_scale == 2.0
        assert knobs.error_probability == 0.1
        assert knobs.forced_policy == \
            MachineSelectionPolicy.LEAST_QUEUE.value


class TestKnobEffects:
    def test_demand_shaping_scales_monthly_counts(self, base_config):
        surged = DemandSurge(scale=2.0).apply(base_config)
        assert sum(surged.jobs_per_month()) > sum(base_config.jobs_per_month())
        lulled = DemandSurge(scale=0.5).apply(base_config)
        assert sum(lulled.jobs_per_month()) < sum(base_config.jobs_per_month())

    def test_windowed_surge_leaves_untouched_months_at_baseline(self):
        config = TraceGeneratorConfig(total_jobs=6000, months=28)
        surged = DemandSurge(scale=1.5, start_month=2,
                             end_month=4).apply(config)
        baseline_counts = config.jobs_per_month()
        surged_counts = surged.jobs_per_month()
        for month, (base, perturbed) in enumerate(
                zip(baseline_counts, surged_counts)):
            if 2 <= month <= 4:
                assert perturbed > base
            else:
                assert perturbed == base

    def test_ramp_clamped_to_one_month_still_applies_the_scale(self):
        config = TraceGeneratorConfig(total_jobs=900, months=9)
        surged = DemandSurge(scale=2.0, start_month=8,
                             ramp=True).apply(config)
        assert surged.scenario is not None
        assert surged.scenario.monthly_demand[-1] == 2.0
        assert surged.jobs_per_month()[-1] > config.jobs_per_month()[-1]

    def test_ramp_reaches_full_scale_at_the_window_end(self):
        config = TraceGeneratorConfig(total_jobs=900, months=6)
        surged = DemandSurge(scale=3.0, start_month=2, end_month=5,
                             ramp=True).apply(config)
        overlay = surged.scenario.monthly_demand
        assert overlay[2] == 1.0
        assert overlay[5] == 3.0
        assert overlay[2] < overlay[3] < overlay[4] < overlay[5]

    def test_outage_takes_the_machine_offline(self, base_config):
        config = MachineOutage("ibmqx2", first_month=1,
                               last_month=2).apply(base_config)
        fleet = config.build_fleet()
        assert not fleet["ibmqx2"].is_online_in_month(1)
        assert not fleet["ibmqx2"].is_online_in_month(2)
        assert fleet["ibmqx2"].is_online_in_month(0)
        assert fleet["ibmqx2"].is_online_in_month(3)

    def test_fleet_change_removes_and_advances(self, base_config):
        config = FleetChange(
            remove=("ibmqx4",),
            bring_online=(("ibmq_manhattan", 1),),
        ).apply(base_config)
        fleet = config.build_fleet()
        assert "ibmqx4" not in fleet
        assert fleet["ibmq_manhattan"].online_since_month == 1

    def test_drift_scale_reaches_the_calibration_model(self, base_config):
        config = CalibrationDrift(scale=4.0).apply(base_config)
        fleet = config.build_fleet()
        baseline_fleet = base_config.build_fleet()
        scaled = fleet["ibmqx2"].calibration_model.drift
        reference = baseline_fleet["ibmqx2"].calibration_model.drift
        assert scaled.error_growth_per_hour == \
            pytest.approx(4.0 * reference.error_growth_per_hour)

    def test_backlog_scale_reaches_the_load_model(self, base_config):
        from repro.cloud.backlog import ExternalLoadModel

        config = BacklogShift(scale=2.0).apply(base_config)
        fleet = config.build_fleet()
        baseline_fleet = base_config.build_fleet()
        shifted = ExternalLoadModel(backend=fleet["ibmqx2"])
        reference = ExternalLoadModel(backend=baseline_fleet["ibmqx2"])
        assert shifted.mean_pending_jobs(0.0) == \
            pytest.approx(2.0 * reference.mean_pending_jobs(0.0))

    def test_failure_rates_build_a_failure_model(self, base_config):
        config = FailureRates(error_probability=0.2,
                              cancel_probability=0.1).apply(base_config)
        model = config.build_failure_model()
        assert model.error_probability == 0.2
        assert model.cancel_probability == 0.1
        assert base_config.build_failure_model() is None

    def test_invalid_knobs_rejected(self):
        with pytest.raises(WorkloadError):
            ScenarioKnobs(demand_scale=0.0)
        with pytest.raises(WorkloadError):
            ScenarioKnobs(error_probability=1.5)
        with pytest.raises(WorkloadError):
            ScenarioKnobs(forced_policy="teleport")
        with pytest.raises(ScenarioError):
            MachineOutage("ibmq_atlantis", 0, 1).apply(TraceGeneratorConfig())
        with pytest.raises(ScenarioError):
            PolicySwap(policy="teleport").apply(TraceGeneratorConfig())


class TestDeterminism:
    """Same seed + same scenario => byte-identical traces, however sharded."""

    @pytest.mark.parametrize("scenario_name",
                             ["demand-surge", "policy-swap"])
    def test_byte_identical_across_worker_and_shard_counts(
            self, base_config, tmp_path, scenario_name):
        scenario = builtin_scenarios()[scenario_name]
        engine = ScenarioEngine(base_config, workers=1, num_shards=1)
        serial = engine.run([scenario], use_cache=False).run_for(scenario_name)
        sharded_engine = ScenarioEngine(base_config, workers=2, num_shards=4)
        sharded = sharded_engine.run([scenario],
                                     use_cache=False).run_for(scenario_name)
        serial_path = tmp_path / "serial.npz"
        sharded_path = tmp_path / "sharded.npz"
        serial.trace.to_npz(serial_path)
        sharded.trace.to_npz(sharded_path)
        assert serial_path.read_bytes() == sharded_path.read_bytes()

    def test_baseline_scenario_matches_plain_run_study(self, base_config,
                                                       tmp_path):
        plain = run_study(config=base_config, workers=1, use_cache=False)
        engine = ScenarioEngine(base_config, workers=1)
        baseline = engine.run([builtin_scenarios()["baseline"]],
                              use_cache=False).run_for("baseline")
        plain_path = tmp_path / "plain.npz"
        scenario_path = tmp_path / "scenario.npz"
        plain.trace.to_npz(plain_path)
        baseline.trace.to_npz(scenario_path)
        assert plain_path.read_bytes() == scenario_path.read_bytes()
        assert baseline.fingerprint == plain.cache_key


class TestEngine:
    def test_cache_reuse_across_suites(self, base_config, tmp_path):
        engine = ScenarioEngine(base_config, workers=1,
                                cache=tmp_path / "cache")
        scenarios = resolve_scenarios(("baseline", "machine-outage"))
        first = engine.run(scenarios)
        assert all(not run.cache_hit for run in first)
        second = engine.run(scenarios)
        assert all(run.cache_hit for run in second)
        assert second.run_for("baseline").trace.records == \
            first.run_for("baseline").trace.records

    def test_baseline_scenario_shares_the_plain_study_cache(
            self, base_config, tmp_path):
        cache_dir = tmp_path / "cache"
        run_study(config=base_config, workers=1, cache_dir=cache_dir)
        engine = ScenarioEngine(base_config, workers=1, cache=cache_dir)
        suite = engine.run([builtin_scenarios()["baseline"]])
        assert suite.run_for("baseline").cache_hit

    def test_identical_expansions_are_deduplicated(self, base_config):
        engine = ScenarioEngine(base_config, workers=1)
        twin_a = Scenario("twin-a", perturbations=(DemandSurge(scale=1.4),))
        twin_b = Scenario("twin-b", perturbations=(DemandSurge(scale=1.4),))
        suite = engine.run([twin_a, twin_b], use_cache=False)
        run_b = suite.run_for("twin-b")
        assert run_b.deduplicated_from == "twin-a"
        assert run_b.trace is suite.run_for("twin-a").trace

    def test_duplicate_names_rejected(self, base_config):
        engine = ScenarioEngine(base_config, workers=1)
        with pytest.raises(ScenarioError):
            engine.run([Scenario("x"), Scenario("x")])

    def test_empty_suite_rejected(self, base_config):
        with pytest.raises(ScenarioError):
            ScenarioEngine(base_config).run([])


class TestSpecFiles:
    SPEC = {
        "study": {"total_jobs": 50, "months": 3, "seed": 21},
        "scenarios": [
            {"name": "baseline"},
            {
                "name": "crunch",
                "description": "double backlog plus a surge",
                "perturbations": [
                    {"kind": "backlog_shift", "scale": 2.0},
                    {"kind": "demand_surge", "scale": 1.3, "ramp": True},
                ],
            },
            {"name": "reroll", "seed": 99},
        ],
    }

    def test_json_spec_roundtrip(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(self.SPEC))
        spec = load_suite(path)
        assert [s.name for s in spec.scenarios] == \
            ["baseline", "crunch", "reroll"]
        config = spec.base_config()
        assert (config.total_jobs, config.months, config.seed) == (50, 3, 21)
        crunch = spec.catalog()["crunch"]
        assert isinstance(crunch.perturbations[0], BacklogShift)
        assert isinstance(crunch.perturbations[1], DemandSurge)
        assert spec.catalog()["reroll"].seed == 99

    def test_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "suite.toml"
        path.write_text(
            '[study]\ntotal_jobs = 40\nmonths = 3\nseed = 2\n\n'
            '[[scenarios]]\nname = "baseline"\n\n'
            '[[scenarios]]\nname = "surge"\n'
            '[[scenarios.perturbations]]\nkind = "demand_surge"\n'
            'scale = 1.5\n')
        spec = load_suite(path)
        assert spec.base_config().total_jobs == 40
        assert isinstance(spec.catalog()["surge"].perturbations[0],
                          DemandSurge)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            perturbation_from_dict({"kind": "weather"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError):
            perturbation_from_dict({"kind": "demand_surge", "volume": 2})

    def test_bad_specs_rejected(self, tmp_path):
        for payload in (
                {"scenarios": []},
                {"study": {"warp": 9}, "scenarios": [{"name": "x"}]},
                {"scenarios": [{"name": "x"}, {"name": "x"}]},
                {"scenarios": [{"description": "nameless"}]},
                {"extra": 1, "scenarios": [{"name": "x"}]},
        ):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(payload))
            with pytest.raises(ScenarioError):
                load_suite(path)

    def test_spec_suffix_and_existence_checked(self, tmp_path):
        with pytest.raises(ScenarioError):
            load_suite(tmp_path / "missing.json")
        path = tmp_path / "suite.yaml"
        path.write_text("scenarios: []")
        with pytest.raises(ScenarioError):
            load_suite(path)


class TestCommandLine:
    ARGS = ["--jobs", "50", "--months", "3", "--seed", "9", "--workers", "1",
            "--quiet"]

    def test_run_scenarios_with_cache_and_output_dir(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.workloads.trace import TraceDataset

        code = main([
            "run-scenarios", *self.ARGS,
            "--scenarios", "baseline,machine-outage",
            "--cache-dir", str(tmp_path / "cache"),
            "--output-dir", str(tmp_path / "traces"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        summary = json.loads(out[:out.index("scenario baseline trace")])
        assert [s["scenario"] for s in summary["scenarios"]] == \
            ["baseline", "machine-outage"]
        trace = TraceDataset.load(tmp_path / "traces" / "baseline.npz")
        assert len(trace) == 50
        # Second invocation is served entirely from the cache.
        code = main([
            "run-scenarios", *self.ARGS,
            "--scenarios", "baseline,machine-outage",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cache_hits"] == 2

    def test_compare_scenarios_writes_artifacts(self, tmp_path, capsys):
        from repro.__main__ import main

        artifact = tmp_path / "BENCH_scenarios.json"
        report_path = tmp_path / "scenarios.md"
        code = main([
            "compare-scenarios", *self.ARGS,
            "--scenarios", "baseline,demand-surge,failure-wave",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(artifact), "--report", str(report_path),
        ])
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["benchmark"] == "scenario_comparison"
        assert payload["comparison"]["baseline"] == "baseline"
        assert len(payload["suite"]["scenarios"]) == 3
        markdown = report_path.read_text()
        assert "| demand-surge |" in markdown
        assert "failure-wave" in markdown

    def test_list_scenarios(self, capsys):
        from repro.__main__ import main

        assert main(["run-scenarios", *self.ARGS, "--list"]) == 0
        out = capsys.readouterr().out
        for name in ACCEPTANCE_SCENARIOS:
            assert f"{name}:" in out

    def test_spec_driven_compare(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps({
            "study": {"total_jobs": 40, "months": 3, "seed": 4},
            "scenarios": [
                {"name": "baseline"},
                {"name": "crunch", "perturbations": [
                    {"kind": "backlog_shift", "scale": 2.0}]},
            ],
        }))
        code = main(["compare-scenarios", *self.ARGS,
                     "--spec", str(spec_path), "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| crunch |" in out

    def test_cli_flags_override_the_spec_study_table(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_path = tmp_path / "suite.json"
        spec_path.write_text(json.dumps({
            "study": {"total_jobs": 5000, "months": 20, "seed": 4},
            "scenarios": [{"name": "baseline"}],
        }))
        artifact = tmp_path / "out.json"
        code = main(["compare-scenarios", "--jobs", "40", "--months", "3",
                     "--seed", "4", "--workers", "1", "--quiet",
                     "--spec", str(spec_path), "--no-cache",
                     "--output", str(artifact)])
        assert code == 0
        payload = json.loads(artifact.read_text())
        # Explicit CLI flags beat the spec; the artifact records what ran.
        assert payload["jobs"] == 40
        assert payload["months"] == 3
        assert payload["comparison"]["baseline_metrics"]["jobs"] == 40.0

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        from repro.__main__ import main

        code = main(["run-scenarios", *self.ARGS,
                     "--scenarios", "weather-machine", "--no-cache"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_and_replicates_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        artifact = tmp_path / "out.json"
        code = main([
            "compare-scenarios", *self.ARGS, "--no-cache",
            "--scenarios", "baseline",
            "--sweep", "backlog_shift.scale=1.5,3",
            "--replicates", "2",
            "--output", str(artifact),
        ])
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["replicates"] == 2
        # 3 scenario groups (baseline + two grid points) x 2 replicates.
        assert len(payload["suite"]["scenarios"]) == 6
        comparison = payload["comparison"]
        assert comparison["baseline_replicates"] == 2
        names = [entry["scenario"] for entry in comparison["scenarios"]]
        assert names == ["sweep@scale=1.5", "sweep@scale=3"]
        assert all(entry["intervals"]["queue_minutes_median"]["n"] == 2.0
                   for entry in comparison["scenarios"])

    def test_sequential_flag_matches_shared_pool(self, tmp_path, capsys):
        from repro.__main__ import main

        shared = tmp_path / "shared.json"
        sequential = tmp_path / "sequential.json"
        base = ["compare-scenarios", *self.ARGS, "--no-cache",
                "--scenarios", "baseline,demand-surge"]
        assert main([*base, "--output", str(shared)]) == 0
        assert main([*base, "--sequential", "--output",
                     str(sequential)]) == 0
        load = lambda p: json.loads(p.read_text())["comparison"]  # noqa: E731
        assert load(shared) == load(sequential)


class TestLazyCacheThreading:
    """The one-call entry points must not drop the lazy_cache flag."""

    def test_run_scenarios_and_run_study_thread_lazy_cache(
            self, tmp_path, monkeypatch):
        from repro.runner import run_study
        from repro.runner.cache import TraceCache
        from repro.scenarios import run_scenarios
        from repro.scenarios.engine import ScenarioEngine

        seen = []
        original = TraceCache.get

        def spy(self, key, lazy=False):
            seen.append(lazy)
            return original(self, key, lazy=lazy)

        monkeypatch.setattr(TraceCache, "get", spy)
        config = TraceGeneratorConfig(**CONFIG)
        scenarios = resolve_scenarios(("baseline",))

        # ScenarioEngine defaults lazy_cache=True and run_scenarios
        # inherits that default...
        run_scenarios(scenarios, config, workers=1,
                      cache_dir=tmp_path / "cache")
        assert seen and all(seen)
        # ...and an explicit override reaches the cache lookup.
        seen.clear()
        run_scenarios(scenarios, config, workers=1,
                      cache_dir=tmp_path / "cache", lazy_cache=False)
        assert seen and not any(seen)

        # run_study defaults lazy_cache=False and threads an override.
        seen.clear()
        run_study(config=config, workers=1, cache_dir=tmp_path / "cache")
        assert seen and not any(seen)
        seen.clear()
        run_study(config=config, workers=1, cache_dir=tmp_path / "cache",
                  lazy_cache=True)
        assert seen and all(seen)
        assert ScenarioEngine(config).lazy_cache is True
