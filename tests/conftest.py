"""Shared fixtures for the test suite.

Expensive fixtures (the small study trace, the full fleet) are session-scoped
so the suite stays fast while still exercising realistic data volumes.
"""

from __future__ import annotations

import pytest

from repro.devices import build_backend, fleet_in_study
from repro.workloads import TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="session")
def fleet():
    """The full study fleet (28 backends including the hosted simulator)."""
    return fleet_in_study(seed=3)


@pytest.fixture(scope="session")
def casablanca():
    """A small privileged 7-qubit machine used by many unit tests."""
    return build_backend("ibmq_casablanca", seed=3)


@pytest.fixture(scope="session")
def athens():
    """A popular public 5-qubit machine."""
    return build_backend("ibmq_athens", seed=3)


@pytest.fixture(scope="session")
def manhattan():
    """The 65-qubit machine (largest in the study)."""
    return build_backend("ibmq_manhattan", seed=3)


@pytest.fixture(scope="session")
def small_trace():
    """A reduced study trace: 400 jobs over 12 months (fast to generate)."""
    config = TraceGeneratorConfig(total_jobs=400, months=12, seed=11)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="session")
def medium_trace():
    """A medium trace used by analysis/prediction tests (700 jobs, 20 months)."""
    config = TraceGeneratorConfig(total_jobs=700, months=20, seed=5)
    return TraceGenerator(config).generate()
