"""Tests for job objects, the execution-time model and the backlog model."""

import pytest

from repro.cloud.backlog import ExternalLoadModel, diurnal_factor, growth_factor
from repro.cloud.execution_model import ExecutionTimeModel
from repro.cloud.job import CircuitSpec, Job, JobResult, circuit_spec_from_circuit
from repro.circuits.library import qft_circuit
from repro.core.exceptions import CloudError
from repro.core.rng import RandomSource
from repro.core.types import AccessLevel, JobStatus
from repro.core.units import DAY_SECONDS


def _spec(width=3, depth=10, gates=20, cx=6) -> CircuitSpec:
    return CircuitSpec(name="c", width=width, depth=depth, num_gates=gates,
                       cx_count=cx, cx_depth=cx // 2)


class TestCircuitSpec:
    def test_validation(self):
        with pytest.raises(CloudError):
            CircuitSpec(name="bad", width=0, depth=1, num_gates=1, cx_count=0,
                        cx_depth=0)
        with pytest.raises(CloudError):
            CircuitSpec(name="bad", width=1, depth=-1, num_gates=1, cx_count=0,
                        cx_depth=0)

    def test_from_circuit(self):
        circuit = qft_circuit(4)
        spec = circuit_spec_from_circuit(circuit)
        assert spec.width == 4
        assert spec.cx_count == circuit.cx_count
        assert spec.family == "qft"


class TestJob:
    def test_shape_validation(self):
        with pytest.raises(CloudError):
            Job(provider="open", backend_name="x", circuits=[], shots=100,
                submit_time=0.0)
        with pytest.raises(CloudError):
            Job(provider="open", backend_name="x", circuits=[_spec()], shots=0,
                submit_time=0.0)

    def test_derived_quantities(self):
        job = Job(provider="open", backend_name="x",
                  circuits=[_spec(width=2), _spec(width=5)], shots=1024,
                  submit_time=10.0)
        assert job.batch_size == 2
        assert job.total_trials == 2048
        assert job.max_width == 5

    def test_lifecycle_timestamps(self):
        job = Job(provider="open", backend_name="x", circuits=[_spec()],
                  shots=100, submit_time=5.0)
        job.mark_queued(5.0)
        job.mark_running(65.0)
        job.mark_finished(95.0, JobStatus.DONE)
        assert job.queue_seconds == pytest.approx(60.0)
        assert job.run_seconds == pytest.approx(30.0)
        assert job.status.is_terminal

    def test_non_terminal_finish_rejected(self):
        job = Job(provider="open", backend_name="x", circuits=[_spec()],
                  shots=100, submit_time=0.0)
        with pytest.raises(CloudError):
            job.mark_finished(10.0, JobStatus.RUNNING)

    def test_unique_ids(self):
        a = Job(provider="open", backend_name="x", circuits=[_spec()],
                shots=1, submit_time=0.0)
        b = Job(provider="open", backend_name="x", circuits=[_spec()],
                shots=1, submit_time=0.0)
        assert a.job_id != b.job_id


class TestJobResult:
    def test_counts_access(self):
        result = JobResult(job_id="j", backend_name="x", status=JobStatus.DONE,
                           per_circuit_counts=[{"00": 7}])
        assert result.success
        assert result.counts(0) == {"00": 7}
        with pytest.raises(CloudError):
            result.counts(3)

    def test_empty_counts_raise(self):
        result = JobResult(job_id="j", backend_name="x", status=JobStatus.ERROR)
        with pytest.raises(CloudError):
            result.counts()


class TestExecutionTimeModel:
    def test_runtime_grows_with_batch_size(self, athens):
        """Fig. 14: job run times grow proportionally with batch size."""
        model = ExecutionTimeModel()
        small = Job(provider="open", backend_name=athens.name,
                    circuits=[_spec()] * 5, shots=1024, submit_time=0.0)
        large = Job(provider="open", backend_name=athens.name,
                    circuits=[_spec()] * 500, shots=1024, submit_time=0.0)
        small_seconds = model.expected_seconds(small, athens)
        large_seconds = model.expected_seconds(large, athens)
        assert large_seconds > 10 * small_seconds

    def test_runtime_grows_sublinearly_with_shots(self, athens):
        """Section VI-C: runtimes increase with shots, but at a fractional rate."""
        model = ExecutionTimeModel()
        base = Job(provider="open", backend_name=athens.name,
                   circuits=[_spec()] * 10, shots=1024, submit_time=0.0)
        more_shots = Job(provider="open", backend_name=athens.name,
                         circuits=[_spec()] * 10, shots=8192, submit_time=0.0)
        ratio = (model.expected_seconds(more_shots, athens)
                 / model.expected_seconds(base, athens))
        assert 1.0 < ratio < 8.0

    def test_larger_machines_have_larger_overheads(self, athens, manhattan):
        """Fig. 13: larger machines show higher run times for the same job."""
        model = ExecutionTimeModel()
        job = Job(provider="academic-hub", backend_name="x",
                  circuits=[_spec()] * 20, shots=1024, submit_time=0.0)
        assert (model.expected_seconds(job, manhattan)
                > model.expected_seconds(job, athens))

    def test_depth_and_width_have_limited_influence(self, athens):
        """Section VI-C: circuit characteristics matter much less than batch/shots."""
        model = ExecutionTimeModel()
        shallow = Job(provider="open", backend_name=athens.name,
                      circuits=[_spec(depth=5, gates=10)] * 20, shots=1024,
                      submit_time=0.0)
        deep = Job(provider="open", backend_name=athens.name,
                   circuits=[_spec(depth=200, gates=400)] * 20, shots=1024,
                   submit_time=0.0)
        ratio = (model.expected_seconds(deep, athens)
                 / model.expected_seconds(shallow, athens))
        assert ratio < 2.0

    def test_jitter_reproducible_with_seeded_rng(self, athens):
        model = ExecutionTimeModel()
        job = Job(provider="open", backend_name=athens.name,
                  circuits=[_spec()] * 3, shots=1024, submit_time=0.0)
        a = model.simulate_seconds(job, athens, rng=RandomSource(5))
        b = model.simulate_seconds(job, athens, rng=RandomSource(5))
        assert a == b

    def test_invalid_configuration_rejected(self):
        with pytest.raises(CloudError):
            ExecutionTimeModel(shots_exponent=0.0)
        with pytest.raises(CloudError):
            ExecutionTimeModel(depth_reference=-1)


class TestExternalLoadModel:
    def test_public_machines_busier_than_privileged(self, fleet):
        """Fig. 9: public machines carry far more pending jobs."""
        athens_model = ExternalLoadModel(backend=fleet["ibmq_athens"], seed=1)
        rome_model = ExternalLoadModel(backend=fleet["ibmq_rome"], seed=1)
        t = 10 * DAY_SECONDS
        assert athens_model.mean_pending_jobs(t) > 5 * rome_model.mean_pending_jobs(t)

    def test_demand_grows_over_the_study(self, fleet):
        """Fig. 2a: usage accelerates over the two-year window."""
        model = ExternalLoadModel(backend=fleet["ibmqx2"], seed=1)
        early = model.mean_pending_jobs(5 * DAY_SECONDS)
        late = model.mean_pending_jobs(600 * DAY_SECONDS)
        assert late > 2 * early

    def test_privileged_access_sees_smaller_backlog(self, fleet):
        # On a *public* machine, fair-share favours privileged submissions.
        model = ExternalLoadModel(backend=fleet["ibmq_athens"], seed=2)
        rng_a, rng_b = RandomSource(9), RandomSource(9)
        public_wait = sum(
            model.sample_backlog_seconds(1000.0, AccessLevel.PUBLIC, rng_a)
            for _ in range(200)
        )
        privileged_wait = sum(
            model.sample_backlog_seconds(1000.0, AccessLevel.PRIVILEGED, rng_b)
            for _ in range(200)
        )
        assert privileged_wait < public_wait

    def test_pending_jobs_sample_non_negative(self, fleet):
        model = ExternalLoadModel(backend=fleet["ibmq_armonk"], seed=3)
        samples = [model.sample_pending_jobs(t * 3600.0) for t in range(100)]
        assert all(s >= 0 for s in samples)

    def test_diurnal_and_growth_factors(self):
        assert 0.25 <= diurnal_factor(0.0) <= 2.0
        assert growth_factor(0.0) == pytest.approx(1.0)
        assert growth_factor(420 * DAY_SECONDS) == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self, fleet):
        with pytest.raises(CloudError):
            ExternalLoadModel(backend=fleet["ibmqx2"], reference_pending_jobs=0)
