"""Tests for repro.core.types."""

import pytest

from repro.core.types import AccessLevel, JobStatus, MachineGeneration, TERMINAL_STATUSES


class TestJobStatus:
    def test_terminal_statuses(self):
        assert JobStatus.DONE.is_terminal
        assert JobStatus.ERROR.is_terminal
        assert JobStatus.CANCELLED.is_terminal

    def test_non_terminal_statuses(self):
        assert not JobStatus.QUEUED.is_terminal
        assert not JobStatus.RUNNING.is_terminal
        assert not JobStatus.INITIALIZING.is_terminal
        assert not JobStatus.VALIDATING.is_terminal

    def test_terminal_set_matches_property(self):
        for status in JobStatus:
            assert (status in TERMINAL_STATUSES) == status.is_terminal

    def test_only_done_is_successful(self):
        assert JobStatus.DONE.is_successful
        assert not JobStatus.ERROR.is_successful
        assert not JobStatus.CANCELLED.is_successful

    def test_round_trip_by_value(self):
        for status in JobStatus:
            assert JobStatus(status.value) is status


class TestAccessLevel:
    def test_public_flag(self):
        assert AccessLevel.PUBLIC.is_public
        assert not AccessLevel.PRIVILEGED.is_public


class TestMachineGeneration:
    @pytest.mark.parametrize("qubits,expected", [
        (1, MachineGeneration.CANARY),
        (5, MachineGeneration.CANARY),
        (7, MachineGeneration.FALCON_SMALL),
        (16, MachineGeneration.FALCON_MEDIUM),
        (27, MachineGeneration.FALCON_MEDIUM),
        (53, MachineGeneration.HUMMINGBIRD),
        (65, MachineGeneration.HUMMINGBIRD),
    ])
    def test_classification_by_qubits(self, qubits, expected):
        assert MachineGeneration.for_qubit_count(qubits) is expected
