"""Tests for suite-level scheduling on the shared worker pool.

Covers the determinism contract of :class:`~repro.runner.pool.
SharedWorkerPool` / :func:`~repro.runner.executor.run_suite` (a suite run
is byte-identical to per-scenario sequential runs for any worker/shard
count), seed-replicate fingerprints, sweep expansion, and the failure-path
hygiene of the trace cache and the pool.
"""

import pytest

from repro.core.exceptions import ScenarioError, WorkloadError
from repro.runner import (
    SharedWorkerPool,
    StudyRunner,
    TraceCache,
    config_fingerprint,
    run_study,
    run_suite,
)
from repro.scenarios import (
    BacklogShift,
    DemandSurge,
    MachineOutage,
    Scenario,
    ScenarioEngine,
    SweepValues,
    builtin_scenarios,
    expand_sweep,
    expand_sweeps,
    parse_sweep_flag,
    replicate_scenarios,
    resolve_scenarios,
    sweep_from_flags,
)
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=60, months=3, seed=11)

SUITE_NAMES = ("baseline", "demand-surge", "machine-outage",
               "calibration-drift", "policy-swap")


@pytest.fixture(scope="module")
def base_config():
    return TraceGeneratorConfig(**CONFIG)


@pytest.fixture(scope="module")
def sequential_suite(base_config):
    """The per-scenario sequential reference every suite run must match."""
    engine = ScenarioEngine(base_config, workers=1, num_shards=1,
                            suite_scheduling=False)
    return engine.run(resolve_scenarios(SUITE_NAMES), use_cache=False)


def _trace_bytes(tmp_path, tag, trace):
    path = tmp_path / f"{tag}.npz"
    trace.to_npz(path)
    return path.read_bytes()


def _exploding_task(payload):
    raise RuntimeError("worker blew up")


class TestSuiteDeterminism:
    @pytest.mark.parametrize("workers,num_shards", [(1, 1), (2, 4), (2, 2)])
    def test_suite_byte_identical_to_sequential(
            self, base_config, sequential_suite, tmp_path, workers,
            num_shards):
        engine = ScenarioEngine(base_config, workers=workers,
                                num_shards=num_shards)
        suite = engine.run(resolve_scenarios(SUITE_NAMES), use_cache=False)
        for name in SUITE_NAMES:
            ours = _trace_bytes(tmp_path, f"suite-{workers}-{name}",
                                suite.run_for(name).trace)
            reference = _trace_bytes(tmp_path, f"seq-{workers}-{name}",
                                     sequential_suite.run_for(name).trace)
            assert ours == reference, name

    def test_run_suite_matches_solo_studies(self, base_config, tmp_path):
        surge = builtin_scenarios()["demand-surge"].apply_to(base_config)
        studies = [(config_fingerprint(base_config), base_config),
                   (config_fingerprint(surge), surge)]
        with SharedWorkerPool(2) as pool:
            results = run_suite(studies, pool, num_shards=3,
                                use_cache=False)
        for key, config in studies:
            solo = run_study(config=config, workers=1, num_shards=1,
                             use_cache=False)
            assert _trace_bytes(tmp_path, f"suite-{key}",
                                results[key].trace) == \
                _trace_bytes(tmp_path, f"solo-{key}", solo.trace)

    def test_run_suite_rejects_duplicate_fingerprints(self, base_config):
        key = config_fingerprint(base_config)
        with pytest.raises(WorkloadError):
            run_suite([(key, base_config), (key, base_config)],
                      SharedWorkerPool(1), use_cache=False)

    def test_pool_survives_several_suite_runs(self, base_config, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        with SharedWorkerPool(2) as pool:
            engine = ScenarioEngine(base_config, cache=cache, pool=pool)
            scenarios = resolve_scenarios(("baseline", "demand-surge"))
            first = engine.run(scenarios)
            assert all(not run.cache_hit for run in first)
            second = engine.run(scenarios)
            assert all(run.cache_hit for run in second)

    def test_closed_pool_rejects_new_work(self, base_config):
        pool = SharedWorkerPool(2)
        pool.close()
        with pytest.raises(WorkloadError):
            StudyRunner(base_config, pool=pool).run(use_cache=False)

    def test_epochs_are_unique_across_pool_instances(self):
        # Regression: per-instance epoch counters restarting at 1 let a
        # later (transient or inline) pool reuse a previous run's cached
        # worker state and never evict it.  Epochs opened here must be
        # released (as run_suite's finally does) — an active epoch pins
        # the worker-state eviction floor for every later run.
        first_pool, second_pool = SharedWorkerPool(1), SharedWorkerPool(1)
        first, second = first_pool.next_epoch(), second_pool.next_epoch()
        try:
            assert first < second
        finally:
            first_pool.release_epoch(first)
            second_pool.release_epoch(second)

    def test_inline_worker_state_is_evicted_between_runs(self, base_config):
        from repro.runner import pool as pool_module

        run_study(config=base_config, workers=1, use_cache=False)
        other = TraceGeneratorConfig(total_jobs=40, months=2, seed=23)
        run_study(config=other, workers=1, use_cache=False)
        # Only the most recent run's epoch may keep state alive in-process.
        epochs = {epoch for epoch, _ in pool_module._STATE}
        assert len(epochs) <= 1
        assert len(pool_module._STATE) <= 1

    def test_sequential_engine_uses_the_supplied_pool(self, base_config):
        submissions = []

        class RecordingPool(SharedWorkerPool):
            def submit_synthesis(self, *args, **kwargs):
                submissions.append("synthesis")
                return super().submit_synthesis(*args, **kwargs)

        pool = RecordingPool(1)
        engine = ScenarioEngine(base_config, pool=pool,
                                suite_scheduling=False)
        engine.run(resolve_scenarios(("baseline",)), use_cache=False)
        assert submissions  # the scenario ran on the caller's pool


class TestReplicates:
    def test_replicates_have_distinct_fingerprints_and_do_not_dedupe(
            self, base_config):
        scenarios = replicate_scenarios(
            [builtin_scenarios()["baseline"]], 3,
            base_seed=base_config.seed)
        assert [s.name for s in scenarios] == \
            ["baseline", "baseline#r1", "baseline#r2"]
        assert scenarios[0].replicate_of is None
        assert all(s.replicate_of == "baseline" for s in scenarios[1:])
        engine = ScenarioEngine(base_config, workers=1)
        suite = engine.run(scenarios, use_cache=False)
        fingerprints = {run.fingerprint for run in suite}
        assert len(fingerprints) == 3
        assert all(run.deduplicated_from is None for run in suite)

    def test_first_replicate_keeps_the_single_run_fingerprint(
            self, base_config):
        scenario = builtin_scenarios()["demand-surge"]
        replicated = replicate_scenarios([scenario], 2,
                                         base_seed=base_config.seed)
        engine = ScenarioEngine(base_config)
        assert engine.fingerprint(replicated[0]) == \
            engine.fingerprint(scenario)

    def test_replication_is_deterministic(self, base_config):
        first = replicate_scenarios([Scenario("x")], 4, base_seed=3)
        second = replicate_scenarios([Scenario("x")], 4, base_seed=3)
        assert [s.seed for s in first] == [s.seed for s in second]
        assert len({s.seed for s in first[1:]}) == 3

    def test_bad_replicate_count_rejected(self):
        with pytest.raises(ScenarioError):
            replicate_scenarios([Scenario("x")], 0)


class TestSweeps:
    def test_single_axis_expansion(self):
        template = Scenario("backlog", perturbations=(
            BacklogShift(scale=SweepValues(1.0, 2.0, 4.0, 8.0)),))
        assert template.has_sweep
        variants = expand_sweep(template)
        assert [v.name for v in variants] == [
            "backlog@scale=1", "backlog@scale=2",
            "backlog@scale=4", "backlog@scale=8"]
        assert [v.perturbations[0].scale for v in variants] == \
            [1.0, 2.0, 4.0, 8.0]
        assert not any(v.has_sweep for v in variants)

    def test_cartesian_grid_across_axes(self):
        template = Scenario("grid", perturbations=(
            BacklogShift(scale=SweepValues(2.0, 4.0)),
            DemandSurge(scale=SweepValues(1.2, 1.5)),
        ))
        variants = expand_sweep(template)
        assert len(variants) == 4
        # Two axes sweep the same field name: labels carry the kind.
        assert variants[0].name == \
            "grid@backlog_shift.scale=2,demand_surge.scale=1.2"

    def test_concrete_scenario_passes_through(self):
        scenario = Scenario("plain", perturbations=(DemandSurge(scale=1.5),))
        assert expand_sweeps([scenario]) == [scenario]

    def test_replicated_template_groups_under_its_variant(self):
        # Regression: replicating a sweep *template* and expanding after
        # must group each re-roll under its own grid point, never mix
        # different grid points into one replicate group.
        template = Scenario("backlog", perturbations=(
            BacklogShift(scale=SweepValues(2.0, 4.0)),))
        replicated = replicate_scenarios([template], 2, base_seed=5)
        variants = expand_sweeps(replicated)
        groups = {}
        for scenario in variants:
            groups.setdefault(scenario.replicate_of or scenario.name,
                              []).append(scenario)
        assert sorted(groups) == ["backlog@scale=2", "backlog@scale=4"]
        for members in groups.values():
            assert len(members) == 2
            scales = {m.perturbations[0].scale for m in members}
            assert len(scales) == 1  # one grid point per group

    def test_unexpanded_sweep_cannot_run(self, base_config):
        template = Scenario("backlog", perturbations=(
            BacklogShift(scale=SweepValues(1.0, 2.0)),))
        with pytest.raises(ScenarioError):
            template.apply_to(base_config)

    def test_engine_auto_expands_sweeps(self, base_config):
        template = Scenario("backlog", perturbations=(
            BacklogShift(scale=SweepValues(1.0, 2.0)),))
        engine = ScenarioEngine(base_config, workers=1)
        suite = engine.run([template], use_cache=False)
        assert suite.names() == ["backlog@scale=1", "backlog@scale=2"]
        # The neutral grid point expands to the plain baseline study.
        assert suite.run_for("backlog@scale=1").fingerprint == \
            config_fingerprint(base_config)

    def test_sweep_flag_parsing(self):
        kind, field_name, values = parse_sweep_flag(
            "backlog_shift.scale=1,2.5,8")
        assert (kind, field_name) == ("backlog_shift", "scale")
        assert values == (1, 2.5, 8)
        kind, field_name, values = parse_sweep_flag(
            "policy_swap.policy=fidelity,queue")
        assert values == ("fidelity", "queue")
        for bad in ("scale=1,2", "backlog_shift.scale", "weather.x=1",
                    "backlog_shift.scale="):
            with pytest.raises(ScenarioError):
                parse_sweep_flag(bad)

    def test_sweep_from_flags_builds_a_grid_template(self):
        template = sweep_from_flags(["backlog_shift.scale=1,2",
                                     "demand_surge.scale=1.5,2"])
        variants = expand_sweep(template)
        assert len(variants) == 4
        with pytest.raises(ScenarioError):
            sweep_from_flags([])

    def test_spec_sweep_syntax(self, tmp_path):
        import json

        from repro.scenarios import load_suite

        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "scenarios": [
                {"name": "backlog", "perturbations": [
                    {"kind": "backlog_shift",
                     "scale": {"sweep": [1.0, 2.0, 4.0]}}]},
            ],
        }))
        spec = load_suite(path)
        variants = expand_sweeps(spec.scenarios)
        assert [v.name for v in variants] == [
            "backlog@scale=1", "backlog@scale=2", "backlog@scale=4"]

    def test_spec_sweep_rejects_empty_axis(self):
        from repro.scenarios import perturbation_from_dict

        with pytest.raises(ScenarioError):
            perturbation_from_dict(
                {"kind": "backlog_shift", "scale": {"sweep": []}})


class TestFailurePaths:
    def test_cache_put_cleans_up_scratch_on_failure(self, tmp_path,
                                                    monkeypatch):
        cache = TraceCache(tmp_path / "cache")
        trace = run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                          use_cache=False).trace

        def explode(self, path):
            path.write_bytes(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr(TraceDataset, "to_npz", explode)
        with pytest.raises(OSError):
            cache.put("deadbeef", trace)
        leftovers = list((tmp_path / "cache").iterdir())
        assert leftovers == []

    def test_worker_failure_propagates_and_terminates(self, base_config,
                                                      monkeypatch):
        from repro.runner import pool as pool_module

        # Patch before the fork so the children inherit the failing task
        # (a module-level function, so apply_async can pickle it).
        monkeypatch.setattr(pool_module, "_synthesise_task", _exploding_task)
        runner = StudyRunner(base_config, workers=2)
        with pytest.raises(RuntimeError, match="worker blew up"):
            runner.run(use_cache=False)

    def test_simulation_outage_scenario_still_deterministic(
            self, base_config, tmp_path):
        # An outage mid-window exercises the fleet-mutating knobs through
        # the shared pool's keyed worker state.
        scenario = Scenario("outage", perturbations=(
            MachineOutage("ibmqx2", first_month=0, last_month=1),))
        shared = ScenarioEngine(base_config, workers=2, num_shards=3).run(
            [scenario], use_cache=False)
        solo = ScenarioEngine(base_config, workers=1, num_shards=1,
                              suite_scheduling=False).run(
            [scenario], use_cache=False)
        assert _trace_bytes(tmp_path, "shared",
                            shared.run_for("outage").trace) == \
            _trace_bytes(tmp_path, "solo", solo.run_for("outage").trace)


class TestSuiteEvents:
    """The structured progress stream and cancellation of run_suite."""

    def _studies(self, base_config, count=2):
        catalog = builtin_scenarios()
        names = ("baseline", "demand-surge", "machine-outage")[:count]
        studies = []
        for name in names:
            config = catalog[name].apply_to(base_config)
            studies.append((config_fingerprint(config), config))
        return studies

    def test_event_stream_shape(self, base_config):
        events = []
        studies = self._studies(base_config)
        with SharedWorkerPool(2) as pool:
            run_suite(studies, pool, num_shards=2, use_cache=False,
                      on_event=events.append)
        kinds = [event.kind for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "suite-done"
        assert kinds.count("queued") == len(studies)
        assert kinds.count("study-done") == len(studies)
        assert kinds.count("sims-queued") == len(studies)
        shard_done = [e for e in events if e.kind == "shard-done"]
        # Every synthesis shard and simulation group reports completion.
        assert {e.phase for e in shard_done} == {"synthesis", "simulation"}
        completed = [e.completed for e in shard_done]
        assert completed == sorted(completed)  # monotonic progress
        assert all(e.completed <= e.total for e in shard_done)
        final = shard_done[-1]
        assert final.completed == final.total
        # Once something has completed, an ETA is attached.
        assert all(e.eta_seconds is not None and e.eta_seconds >= 0
                   for e in shard_done)
        assert all(e.elapsed_seconds >= 0 for e in events)
        # Study events carry their fingerprint; as_dict stays JSON-ready.
        done = [e for e in events if e.kind == "study-done"]
        assert {e.key for e in done} == {key for key, _ in studies}
        for event in events:
            payload = event.as_dict()
            assert payload["kind"] == event.kind
            assert isinstance(payload["completed"], int)

    def test_cache_hits_emit_events_not_shards(self, base_config, tmp_path):
        studies = self._studies(base_config, count=1)
        with SharedWorkerPool(1) as pool:
            run_suite(studies, pool, num_shards=1, cache=tmp_path)
            events = []
            run_suite(studies, pool, num_shards=1, cache=tmp_path,
                      on_event=events.append)
        kinds = [event.kind for event in events]
        assert "cache-hit" in kinds
        assert "shard-done" not in kinds
        assert kinds[-1] == "suite-done"

    def test_should_stop_raises_suite_cancelled(self, base_config):
        from repro.runner import SuiteCancelled

        studies = self._studies(base_config, count=3)
        with SharedWorkerPool(1) as pool:
            with pytest.raises(SuiteCancelled):
                run_suite(studies, pool, num_shards=1, use_cache=False,
                          should_stop=lambda: True)
            # The shared pool survives a cancelled run: the same studies
            # run to completion afterwards.
            results = run_suite(studies, pool, num_shards=1,
                                use_cache=False)
        assert len(results) == len(studies)

    def test_event_handler_errors_do_not_break_the_run(self, base_config):
        def explode(event):
            raise RuntimeError("observer crashed")

        studies = self._studies(base_config, count=1)
        with SharedWorkerPool(1) as pool:
            results = run_suite(studies, pool, num_shards=2,
                                use_cache=False, on_event=explode)
        assert len(results) == 1
