"""Tests for repro.core.units."""

import pytest

from repro.core.units import (
    DAY_SECONDS,
    HOUR_SECONDS,
    MINUTE_SECONDS,
    days_to_seconds,
    format_duration,
    hours_to_seconds,
    minutes_to_seconds,
    seconds_to_minutes,
)


class TestConversions:
    def test_constants_consistent(self):
        assert HOUR_SECONDS == 60 * MINUTE_SECONDS
        assert DAY_SECONDS == 24 * HOUR_SECONDS

    def test_minutes_round_trip(self):
        assert seconds_to_minutes(minutes_to_seconds(7.5)) == pytest.approx(7.5)

    def test_hours_and_days(self):
        assert hours_to_seconds(2) == 7200
        assert days_to_seconds(1.5) == pytest.approx(129600)


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(42) == "42.0s"

    def test_minutes(self):
        assert format_duration(90) == "1m30s"

    def test_hours(self):
        assert format_duration(2 * 3600 + 120) == "2h02m"

    def test_days(self):
        assert format_duration(DAY_SECONDS + 3 * HOUR_SECONDS) == "1d03h"

    def test_negative(self):
        assert format_duration(-90) == "-1m30s"
