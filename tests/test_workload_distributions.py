"""Tests for repro.workloads.distributions, circuit_metrics and compile_model."""

import numpy as np
import pytest

from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource
from repro.devices import build_backend
from repro.transpiler import transpile
from repro.circuits.library import build_circuit
from repro.workloads.circuit_metrics import (
    CircuitMetrics,
    compiled_metrics,
    logical_metrics,
    routing_overhead_factor,
)
from repro.workloads.compile_model import CompileTimeModel
from repro.workloads.distributions import (
    BatchSizeSampler,
    FamilySampler,
    ShotsSampler,
    WidthSampler,
    WorkloadDistributions,
)


class TestSamplers:
    def test_batch_sizes_within_limits(self):
        sampler = BatchSizeSampler()
        rng = RandomSource(1)
        samples = [sampler.sample(rng) for _ in range(2000)]
        assert min(samples) >= 1
        assert max(samples) <= 900

    def test_batch_size_mean_near_hundred(self):
        """~6000 jobs x mean batch ~100 gives the paper's ~600k circuits."""
        sampler = BatchSizeSampler()
        rng = RandomSource(2)
        samples = [sampler.sample(rng) for _ in range(5000)]
        assert 70 <= np.mean(samples) <= 160

    def test_invalid_mixture_rejected(self):
        with pytest.raises(WorkloadError):
            BatchSizeSampler(components=((0.5, 1, 10),))

    def test_shots_respect_ibm_limit(self):
        sampler = ShotsSampler()
        rng = RandomSource(3)
        samples = [sampler.sample(rng) for _ in range(2000)]
        assert max(samples) <= 8192
        assert set(samples) <= set(sampler.values)

    def test_width_distribution_is_nisq_scale(self):
        sampler = WidthSampler()
        rng = RandomSource(4)
        samples = [sampler.sample(rng) for _ in range(3000)]
        assert min(samples) >= 1
        assert max(samples) <= 27
        fraction_small = np.mean([s <= 6 for s in samples])
        assert fraction_small > 0.6

    def test_family_sampler_covers_all_families(self):
        sampler = FamilySampler()
        rng = RandomSource(5)
        samples = {sampler.sample(rng) for _ in range(2000)}
        assert samples == set(sampler.families)

    def test_provider_mix(self):
        distributions = WorkloadDistributions(privileged_fraction=0.5)
        rng = RandomSource(6)
        providers = [distributions.sample_provider(rng) for _ in range(2000)]
        fraction = providers.count("academic-hub") / len(providers)
        assert 0.4 <= fraction <= 0.6

    def test_invalid_privileged_fraction(self):
        with pytest.raises(WorkloadError):
            WorkloadDistributions(privileged_fraction=1.5)


class TestCircuitMetrics:
    @pytest.mark.parametrize("family", ["qft", "ghz", "bv", "qaoa", "vqe", "random"])
    def test_logical_metrics_match_real_circuits(self, family):
        metrics = logical_metrics(family, 5)
        circuit = build_circuit(family, 5, rng=RandomSource(5, name="metrics"))
        assert metrics.width == circuit.num_qubits
        # Two-qubit gates are counted in CX equivalents, so the count is at
        # least the raw two-qubit gate count and at most 3x it (SWAP cost).
        assert circuit.cx_count <= metrics.cx_count <= 3 * max(circuit.cx_count, 1)

    def test_ghz_metrics_exact(self):
        # GHZ uses only native CX, so the equivalent count is exact.
        circuit = build_circuit("ghz", 6)
        assert logical_metrics("ghz", 6).cx_count == circuit.cx_count

    def test_analytic_formulas_for_large_widths(self):
        metrics = logical_metrics("qft", 100)
        assert metrics.width == 100
        assert metrics.cx_count == 100 * 99
        assert metrics.num_gates > metrics.cx_count

    def test_routing_overhead_larger_on_sparse_machines(self, fleet):
        simulator = fleet["ibmq_qasm_simulator"]
        manhattan = fleet["ibmq_manhattan"]
        sim_gate, _ = routing_overhead_factor(simulator, 8)
        sparse_gate, _ = routing_overhead_factor(manhattan, 8)
        assert sim_gate == pytest.approx(1.0)
        assert sparse_gate > 1.2

    def test_compiled_metrics_within_2x_of_real_transpiler(self):
        """The overhead model must stay in the ballpark of the real compiler."""
        backend = build_backend("ibmq_casablanca", seed=1)
        estimated = compiled_metrics("qft", 5, backend)
        real = transpile(build_circuit("qft", 5), backend,
                         optimization_level=1).circuit
        assert 0.4 * real.cx_count <= estimated.cx_count <= 2.5 * real.cx_count

    def test_compiled_metrics_reject_oversized(self, athens):
        with pytest.raises(WorkloadError):
            compiled_metrics("qft", 10, athens)

    def test_jitter_is_bounded_and_positive(self):
        base = CircuitMetrics(width=4, depth=20, num_gates=40, cx_count=10,
                              cx_depth=8)
        rng = RandomSource(7)
        for _ in range(100):
            jittered = base.jittered(rng)
            assert jittered.width == 4
            assert jittered.depth >= 1
            assert jittered.cx_count >= 0


class TestCompileTimeModel:
    def test_compile_time_grows_with_machine_size(self):
        """Fig. 5: the same circuit compiled for a bigger machine costs more."""
        model = CompileTimeModel(jitter_sigma=0.0)
        metrics = logical_metrics("qft", 16)
        small = model.circuit_seconds(metrics, machine_qubits=16)
        large = model.circuit_seconds(metrics, machine_qubits=1000)
        assert large > 2 * small

    def test_compile_time_grows_with_circuit_size(self):
        model = CompileTimeModel(jitter_sigma=0.0)
        small = model.circuit_seconds(logical_metrics("qft", 4), 27)
        large = model.circuit_seconds(logical_metrics("qft", 24), 27)
        assert large > 5 * small

    def test_job_seconds_scale_with_batch(self):
        model = CompileTimeModel(jitter_sigma=0.0)
        metrics = logical_metrics("ghz", 5)
        assert model.job_seconds(metrics, 10, 27) == pytest.approx(
            10 * model.circuit_seconds(metrics, 27))

    def test_model_within_order_of_magnitude_of_real_transpiler(self):
        """Calibration check against the actual pass manager."""
        import time

        backend = build_backend("ibmq_casablanca", seed=1)
        circuit = build_circuit("qft", 5)
        started = time.perf_counter()
        transpile(circuit, backend, optimization_level=2)
        measured = time.perf_counter() - started
        model = CompileTimeModel(jitter_sigma=0.0)
        estimated = model.circuit_seconds(logical_metrics("qft", 5),
                                          backend.num_qubits)
        assert estimated < 30 * measured
        assert measured < 300 * estimated

    def test_invalid_inputs_rejected(self):
        model = CompileTimeModel()
        metrics = logical_metrics("ghz", 3)
        with pytest.raises(WorkloadError):
            model.circuit_seconds(metrics, machine_qubits=0)
        with pytest.raises(WorkloadError):
            model.job_seconds(metrics, batch_size=0, machine_qubits=5)
