"""Tests for user behaviour models and the trace dataset container."""


import pytest

from repro.core.exceptions import WorkloadError
from repro.core.rng import RandomSource
from repro.workloads.trace import JobRecord, TraceDataset
from repro.workloads.users import (
    MachineSelectionPolicy,
    UserProfile,
    default_user_population,
    pick_user,
)


def _record(machine="ibmq_athens", qubits=5, status="DONE", batch=10, shots=1024,
            queue=600.0, run=120.0, width=3, month=2, job_id="job-x",
            pending=5, crossed=False) -> JobRecord:
    return JobRecord(
        job_id=job_id, provider="open", access="public", machine=machine,
        machine_qubits=qubits, month_index=month, batch_size=batch, shots=shots,
        circuit_family="qft", circuit_width=width, circuit_depth=20,
        circuit_gates=40, circuit_cx=12, circuit_cx_depth=8, memory_slots=width,
        submit_time=1000.0, start_time=1000.0 + queue,
        end_time=1000.0 + queue + run, status=status, queue_seconds=queue,
        run_seconds=run, compile_seconds=0.5, pending_ahead=pending,
        crossed_calibration=crossed,
    )


class TestUserProfiles:
    def test_smallest_fit_policy(self, fleet):
        profile = UserProfile("u", MachineSelectionPolicy.SMALLEST_FIT)
        eligible = [fleet["ibmq_athens"], fleet["ibmq_manhattan"]]
        chosen = profile.select_machine(eligible, RandomSource(1))
        assert chosen.name == "ibmq_athens"

    def test_best_fidelity_policy_picks_lowest_error(self, fleet):
        profile = UserProfile("u", MachineSelectionPolicy.BEST_FIDELITY)
        eligible = [fleet["ibmqx2"], fleet["ibmq_santiago"]]
        chosen = profile.select_machine(eligible, RandomSource(1), timestamp=0.0)
        errors = {
            b.name: b.calibration_at(0.0, apply_drift=False).average_cx_error()
            for b in eligible
        }
        assert errors[chosen.name] == min(errors.values())

    def test_least_queue_policy_uses_estimates(self, fleet):
        profile = UserProfile("u", MachineSelectionPolicy.LEAST_QUEUE)
        eligible = [fleet["ibmq_athens"], fleet["ibmq_rome"]]
        chosen = profile.select_machine(
            eligible, RandomSource(1),
            pending_estimate={"ibmq_athens": 500.0, "ibmq_rome": 2.0})
        assert chosen.name == "ibmq_rome"

    def test_popularity_policy_prefers_high_demand(self, fleet):
        profile = UserProfile("u", MachineSelectionPolicy.POPULARITY)
        eligible = [fleet["ibmq_athens"], fleet["ibmq_rome"]]
        rng = RandomSource(2)
        picks = [profile.select_machine(eligible, rng).name for _ in range(300)]
        assert picks.count("ibmq_athens") > picks.count("ibmq_rome")

    def test_empty_eligible_list_rejected(self):
        profile = UserProfile("u", MachineSelectionPolicy.RANDOM)
        with pytest.raises(WorkloadError):
            profile.select_machine([], RandomSource(1))

    def test_population_weights(self):
        population = default_user_population()
        rng = RandomSource(3)
        picks = [pick_user(population, rng).name for _ in range(500)]
        # The crowd-follower class dominates the population by weight.
        assert picks.count("crowd-follower") > picks.count("explorer")

    def test_invalid_profile_rejected(self):
        with pytest.raises(WorkloadError):
            UserProfile("bad", MachineSelectionPolicy.RANDOM, weight=0)


class TestJobRecord:
    def test_derived_metrics(self):
        record = _record(batch=20, shots=1000, queue=1200.0, run=300.0, width=4,
                         qubits=16)
        assert record.total_trials == 20000
        assert record.utilization == pytest.approx(0.25)
        assert record.queue_minutes == pytest.approx(20.0)
        assert record.queue_to_run_ratio == pytest.approx(4.0)
        assert record.per_circuit_queue_seconds == pytest.approx(60.0)

    def test_missing_run_time_yields_none(self):
        record = _record()
        record = JobRecord(**{**record.as_dict(), "run_seconds": None,
                              "start_time": None, "end_time": None,
                              "queue_seconds": None})
        assert record.run_minutes is None
        assert record.queue_to_run_ratio is None


class TestTraceDataset:
    def test_filters_and_groups(self):
        records = [
            _record(job_id="a", machine="ibmq_athens", status="DONE"),
            _record(job_id="b", machine="ibmq_rome", status="ERROR"),
            _record(job_id="c", machine="ibmq_athens", status="DONE", month=5),
        ]
        trace = TraceDataset.from_records(records)
        assert len(trace) == 3
        assert trace.machines() == ["ibmq_athens", "ibmq_rome"]
        assert len(trace.successful()) == 2
        assert len(trace.for_machine("ibmq_rome")) == 1
        assert set(trace.group_by_month()) == {2, 5}

    def test_column_access(self):
        trace = TraceDataset.from_records([_record(job_id="a"), _record(job_id="b", batch=50)])
        batches = trace.numeric_column("batch_size")
        assert list(batches) == [10.0, 50.0]
        with pytest.raises(WorkloadError):
            trace.column("not_a_column")

    def test_summary_counts(self):
        trace = TraceDataset.from_records([_record(batch=10, shots=100),
                              _record(batch=5, shots=200)])
        summary = trace.summary()
        assert summary["jobs"] == 2
        assert summary["circuits"] == 15
        assert summary["trials"] == 10 * 100 + 5 * 200

    def test_json_round_trip(self, tmp_path):
        trace = TraceDataset.from_records([_record(job_id="a"), _record(job_id="b")],
                             metadata={"seed": 1})
        path = tmp_path / "trace.json"
        trace.to_json(path)
        restored = TraceDataset.from_json(path)
        assert len(restored) == 2
        assert restored.metadata["seed"] == 1
        assert restored[0].as_dict() == trace[0].as_dict()

    def test_csv_round_trip(self, tmp_path):
        trace = TraceDataset.from_records([_record(job_id="a", crossed=True), _record(job_id="b")])
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        restored = TraceDataset.from_csv(path)
        assert len(restored) == 2
        assert restored[0].crossed_calibration is True
        assert restored[0].batch_size == trace[0].batch_size
        assert restored[0].queue_seconds == pytest.approx(trace[0].queue_seconds)

    def test_csv_round_trip_preserves_none(self, tmp_path):
        record = JobRecord(**{**_record(job_id="x").as_dict(),
                              "run_seconds": None, "end_time": None})
        path = tmp_path / "trace.csv"
        TraceDataset.from_records([record]).to_csv(path)
        restored = TraceDataset.from_csv(path)
        assert restored[0].run_seconds is None
