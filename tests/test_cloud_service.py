"""Tests for the cloud service simulation (repro.cloud.service)."""

import pytest

from repro.cloud.calibration_cycle import CalibrationCrossoverDetector
from repro.cloud.job import CircuitSpec, Job
from repro.cloud.service import FailureModel, QuantumCloudService
from repro.core.exceptions import CloudError
from repro.core.types import JobStatus
from repro.core.units import DAY_SECONDS, HOUR_SECONDS
from repro.devices import build_fleet


def _spec(width=2):
    return CircuitSpec(name="c", width=width, depth=6, num_gates=10, cx_count=3,
                       cx_depth=2)


def _job(backend="ibmq_athens", provider="open", submit=0.0, batch=2,
         shots=1024, width=2):
    return Job(provider=provider, backend_name=backend,
               circuits=[_spec(width)] * batch, shots=shots, submit_time=submit)


@pytest.fixture
def service():
    fleet = build_fleet(["ibmq_athens", "ibmq_rome", "ibmq_casablanca"], seed=2)
    return QuantumCloudService(fleet, seed=2)


class TestSubmission:
    def test_job_lifecycle_produces_timestamps(self, service):
        job = _job(submit=100.0)
        service.submit(job)
        service.drain()
        assert job.status.is_terminal
        if job.status is not JobStatus.CANCELLED:
            assert job.start_time is not None
            assert job.end_time > job.start_time >= job.submit_time
            assert job.queue_seconds >= 0
            assert job.run_seconds > 0

    def test_unknown_backend_rejected(self, service):
        with pytest.raises(CloudError):
            service.submit(_job(backend="ibmq_nowhere"))

    def test_unknown_provider_rejected(self, service):
        with pytest.raises(CloudError):
            service.submit(_job(provider="stranger"))

    def test_public_provider_cannot_use_privileged_machine(self, service):
        with pytest.raises(CloudError):
            service.submit(_job(backend="ibmq_rome", provider="open"))

    def test_privileged_provider_can_use_privileged_machine(self, service):
        job = _job(backend="ibmq_rome", provider="academic-hub")
        service.submit(job)
        service.drain()
        assert job.status.is_terminal

    def test_batch_limit_enforced(self, service):
        with pytest.raises(CloudError):
            service.submit(_job(batch=901))

    def test_submission_in_the_past_rejected(self, service):
        service.submit(_job(submit=HOUR_SECONDS))
        service.run_until(2 * HOUR_SECONDS)
        with pytest.raises(CloudError):
            service.submit(_job(submit=0.0))


class TestQueueingBehaviour:
    def test_same_machine_jobs_serialise(self):
        """Two studied jobs on one machine cannot overlap in execution."""
        fleet = build_fleet(["ibmq_athens"], seed=4)
        service = QuantumCloudService(fleet, seed=4,
                                      failure_model=FailureModel(0.0, 0.0))
        first = _job(submit=0.0, batch=50)
        second = _job(submit=1.0, batch=50)
        service.submit(first)
        service.submit(second)
        service.drain()
        assert first.start_time is not None and second.start_time is not None
        earlier, later = sorted([first, second], key=lambda j: j.start_time)
        assert later.start_time >= earlier.end_time - 1e-6

    def test_queue_seconds_include_backlog(self, service):
        job = _job(submit=3 * HOUR_SECONDS)
        service.submit(job)
        service.drain()
        if job.status is not JobStatus.CANCELLED:
            assert job.queue_seconds >= 0.0

    def test_pending_ahead_recorded(self, service):
        job = _job(submit=10.0)
        service.submit(job)
        assert job.pending_ahead >= 0

    def test_completed_jobs_collected(self, service):
        jobs = [_job(submit=float(i * 60)) for i in range(5)]
        for job in jobs:
            service.submit(job)
        completed = service.drain()
        assert len(completed) == 5
        assert all(j.status.is_terminal for j in completed)


class TestStatuses:
    def test_failure_model_produces_errors_and_cancellations(self):
        fleet = build_fleet(["ibmq_athens"], seed=9)
        service = QuantumCloudService(
            fleet, seed=9, failure_model=FailureModel(error_probability=0.5,
                                                      cancel_probability=0.3))
        jobs = [_job(submit=float(i * 600)) for i in range(60)]
        for job in jobs:
            service.submit(job)
        service.drain()
        statuses = {job.status for job in jobs}
        assert JobStatus.ERROR in statuses
        assert JobStatus.CANCELLED in statuses
        cancelled = [j for j in jobs if j.status is JobStatus.CANCELLED]
        assert all(j.start_time is None for j in cancelled)

    def test_all_done_when_failures_disabled(self):
        fleet = build_fleet(["ibmq_athens"], seed=1)
        service = QuantumCloudService(fleet, seed=1,
                                      failure_model=FailureModel(0.0, 0.0))
        jobs = [_job(submit=float(i * 600)) for i in range(10)]
        for job in jobs:
            service.submit(job)
        service.drain()
        assert all(job.status is JobStatus.DONE for job in jobs)

    def test_invalid_failure_model(self):
        with pytest.raises(CloudError):
            FailureModel(error_probability=0.9, cancel_probability=0.2)

    def test_result_for_completed_job(self, service):
        job = _job(submit=0.0)
        service.submit(job)
        service.drain()
        result = service.result_for(job)
        assert result.job_id == job.job_id
        assert result.status is job.status

    def test_result_for_unfinished_job_rejected(self, service):
        job = _job(submit=50.0)
        with pytest.raises(CloudError):
            service.result_for(job)


class TestCrossoverDetector:
    def test_crossover_detected_for_long_waits(self):
        fleet = build_fleet(["ibmq_athens"], seed=5)
        detector = CalibrationCrossoverDetector(fleet)
        job = _job(submit=10 * HOUR_SECONDS)
        job.mark_queued(job.submit_time)
        job.mark_running(job.submit_time + DAY_SECONDS)  # next calibration epoch
        record = detector.check(job)
        assert record.crossed
        assert record.epochs_stale >= 1

    def test_no_crossover_for_short_waits(self):
        fleet = build_fleet(["ibmq_athens"], seed=5)
        detector = CalibrationCrossoverDetector(fleet)
        job = _job(submit=10 * HOUR_SECONDS)
        job.mark_queued(job.submit_time)
        job.mark_running(job.submit_time + 60.0)
        assert not detector.check(job).crossed

    def test_unstarted_job_rejected(self):
        fleet = build_fleet(["ibmq_athens"], seed=5)
        detector = CalibrationCrossoverDetector(fleet)
        with pytest.raises(CloudError):
            detector.check(_job())

    def test_crossover_fraction(self):
        fleet = build_fleet(["ibmq_athens"], seed=5)
        detector = CalibrationCrossoverDetector(fleet)
        fast = _job(submit=6 * HOUR_SECONDS)
        fast.mark_running(fast.submit_time + 30)
        slow = _job(submit=6 * HOUR_SECONDS)
        slow.mark_running(slow.submit_time + 2 * DAY_SECONDS)
        assert detector.crossover_fraction([fast, slow]) == pytest.approx(0.5)
