"""Tests for repro.devices.calibration."""

import pytest

from repro.core.exceptions import DeviceError
from repro.core.units import DAY_SECONDS, HOUR_SECONDS
from repro.devices.calibration import (
    CalibrationModel,
    DriftModel,
    GateCalibration,
    QubitCalibration,
)
from repro.devices.topology import falcon_topology, line_topology


@pytest.fixture
def model():
    return CalibrationModel(
        machine="testq", coupling_map=falcon_topology(7), seed=5
    )


class TestDataClasses:
    def test_qubit_calibration_validation(self):
        with pytest.raises(DeviceError):
            QubitCalibration(t1_us=-1, t2_us=50, readout_error=0.01,
                             single_qubit_error=0.001)
        with pytest.raises(DeviceError):
            QubitCalibration(t1_us=50, t2_us=50, readout_error=1.5,
                             single_qubit_error=0.001)

    def test_gate_calibration_validation(self):
        with pytest.raises(DeviceError):
            GateCalibration(error=1.2, duration_ns=300)
        with pytest.raises(DeviceError):
            GateCalibration(error=0.01, duration_ns=0)


class TestCalibrationModel:
    def test_snapshot_is_deterministic_per_epoch(self, model):
        a = model.snapshot_for_epoch(3)
        b = model.snapshot_for_epoch(3)
        assert a.qubits[0].t1_us == b.qubits[0].t1_us
        assert a.average_cx_error() == b.average_cx_error()

    def test_snapshots_differ_across_epochs(self, model):
        a = model.snapshot_for_epoch(0)
        b = model.snapshot_for_epoch(1)
        assert a.average_cx_error() != pytest.approx(b.average_cx_error())

    def test_snapshot_covers_every_qubit_and_edge(self, model):
        snapshot = model.snapshot_for_epoch(0)
        assert snapshot.num_qubits == 7
        for a, b in model.coupling_map.edges:
            assert snapshot.has_gate(a, b)
            assert snapshot.has_gate(b, a)  # undirected lookup

    def test_missing_gate_raises(self, model):
        snapshot = model.snapshot_for_epoch(0)
        with pytest.raises(DeviceError):
            snapshot.gate(0, 6)  # not an edge of the 7q falcon

    def test_spatial_variation_matches_paper_range(self):
        """Section IV-B: CX error CoV around 75 %, coherence CoV 30-40 %."""
        model = CalibrationModel("big", falcon_topology(27), seed=1)
        snapshot = model.snapshot_for_epoch(0)
        assert 0.3 <= snapshot.cx_error_cov() <= 1.3

    def test_epoch_arithmetic(self, model):
        start = model.epoch_start(2)
        assert model.epoch_for_time(start + 10) == 2
        assert model.epoch_for_time(start - 10) == 1

    def test_crossover_detection(self, model):
        compile_time = model.epoch_start(1) + 2 * HOUR_SECONDS
        same_epoch_run = compile_time + HOUR_SECONDS
        next_epoch_run = compile_time + DAY_SECONDS
        assert not model.crosses_calibration(compile_time, same_epoch_run)
        assert model.crosses_calibration(compile_time, next_epoch_run)

    def test_day_to_day_variation_is_substantial(self):
        """The paper reports >2x day-to-day variation in error averages."""
        model = CalibrationModel("var", line_topology(5), seed=9)
        averages = [model.snapshot_for_epoch(e).average_cx_error()
                    for e in range(30)]
        assert max(averages) / min(averages) > 1.5

    def test_best_qubits_sorted_by_quality(self, model):
        snapshot = model.snapshot_for_epoch(0)
        best = snapshot.best_qubits(3)
        assert len(best) == 3
        scores = [
            snapshot.qubit(q).single_qubit_error + snapshot.qubit(q).readout_error
            for q in range(snapshot.num_qubits)
        ]
        assert scores[best[0]] == min(scores)

    def test_invalid_period_rejected(self):
        with pytest.raises(DeviceError):
            CalibrationModel("bad", line_topology(2), calibration_period=0)


class TestDriftModel:
    def test_errors_grow_with_time(self, model):
        fresh = model.snapshot_for_epoch(0)
        drift = DriftModel(error_growth_per_hour=0.05)
        later = drift.apply(fresh, fresh.timestamp + 10 * HOUR_SECONDS)
        assert later.average_cx_error() > fresh.average_cx_error()
        assert later.average_t1_us() < fresh.average_t1_us()

    def test_no_drift_at_calibration_instant(self, model):
        fresh = model.snapshot_for_epoch(0)
        same = DriftModel().apply(fresh, fresh.timestamp)
        assert same.average_cx_error() == pytest.approx(fresh.average_cx_error())

    def test_errors_bounded(self, model):
        fresh = model.snapshot_for_epoch(0)
        drift = DriftModel(error_growth_per_hour=10.0)
        later = drift.apply(fresh, fresh.timestamp + 100 * HOUR_SECONDS)
        assert all(g.error <= 0.75 for g in later.gates.values())
        assert all(q.readout_error <= 0.5 for q in later.qubits)

    def test_negative_rate_rejected(self):
        with pytest.raises(DeviceError):
            DriftModel(error_growth_per_hour=-0.1)

    def test_snapshot_at_applies_drift(self, model):
        epoch_start = model.epoch_start(0)
        fresh = model.snapshot_at(epoch_start, apply_drift=True)
        stale = model.snapshot_at(epoch_start + 20 * HOUR_SECONDS, apply_drift=True)
        assert stale.average_cx_error() >= fresh.average_cx_error()
