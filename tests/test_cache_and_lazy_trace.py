"""Tests for the PR's data-plane satellites: lazy npz column loads,
actionable schema-mismatch errors in the trace cache, and the buffered
backlog draw streams."""

import numpy as np
import pytest

import repro.workloads.trace as trace_module
from repro.core.exceptions import TraceSchemaError
from repro.core.rng import BufferedDraws, RandomSource
from repro.runner import StudyRunner, TraceCache, run_study
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TRACE_SCHEMA_VERSION, TraceDataset

CONFIG = dict(total_jobs=50, months=3, seed=17)


@pytest.fixture(scope="module")
def study_trace():
    return run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                     use_cache=False).trace


class TestLazyNpz:
    def test_lazy_load_defers_column_decompression(self, study_trace,
                                                   tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.to_npz(path)
        lazy = TraceDataset.from_npz(path, lazy=True)
        assert lazy._columns.loaded() == ()
        # Row count comes from the header, not from a decompressed column.
        assert len(lazy) == len(study_trace)
        assert lazy._columns.loaded() == ()
        queue = lazy.values("queue_seconds")
        assert set(lazy._columns.loaded()) == {"queue_seconds"}
        np.testing.assert_array_equal(queue,
                                      study_trace.values("queue_seconds"))

    def test_lazy_and_eager_loads_are_value_identical(self, study_trace,
                                                      tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.to_npz(path)
        lazy = TraceDataset.from_npz(path, lazy=True)
        assert lazy.metadata == study_trace.metadata
        assert lazy.records == study_trace.records
        assert lazy.status_counts() == study_trace.status_counts()

    def test_lazy_trace_resaves_byte_identically(self, study_trace, tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.to_npz(path)
        resaved = tmp_path / "resaved.npz"
        TraceDataset.from_npz(path, lazy=True).to_npz(resaved)
        assert resaved.read_bytes() == path.read_bytes()

    def test_lazy_group_by_and_where_force_loads(self, study_trace, tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.to_npz(path)
        lazy = TraceDataset.from_npz(path, lazy=True)
        machines = lazy.group_by_machine()
        assert set(machines) == set(study_trace.machines())
        done = lazy.successful()
        assert len(done) == len(study_trace.successful())

    def test_load_dispatch_accepts_lazy(self, study_trace, tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.save(path)
        lazy = TraceDataset.load(path, lazy=True)
        assert len(lazy) == len(study_trace)

    def test_unknown_lazy_column_rejected(self, study_trace, tmp_path):
        path = tmp_path / "trace.npz"
        study_trace.to_npz(path)
        lazy = TraceDataset.from_npz(path, lazy=True)
        with pytest.raises(KeyError):
            lazy._columns["no_such_column"]


class TestSchemaMismatch:
    def test_npz_layout_mismatch_names_versions_and_path(
            self, study_trace, tmp_path, monkeypatch):
        path = tmp_path / "trace.npz"
        monkeypatch.setattr(trace_module, "NPZ_SCHEMA_VERSION", 999)
        study_trace.to_npz(path)
        monkeypatch.undo()
        with pytest.raises(TraceSchemaError) as excinfo:
            TraceDataset.from_npz(path)
        message = str(excinfo.value)
        assert "999" in message
        assert str(trace_module.NPZ_SCHEMA_VERSION) in message
        assert str(path) in message
        # Backward compatible: still a ValueError for legacy callers.
        assert isinstance(excinfo.value, ValueError)

    def test_cache_surfaces_trace_schema_mismatch(self, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        cache = TraceCache(tmp_path / "cache")
        result = StudyRunner(config, workers=1, cache=cache).run()
        # Tamper with the stored entry: pretend an older generator wrote it.
        stale = TraceDataset.from_npz(result.cache_path)
        stale.metadata["trace_schema"] = TRACE_SCHEMA_VERSION - 1
        stale.to_npz(result.cache_path)
        with pytest.raises(TraceSchemaError) as excinfo:
            cache.get(result.cache_key)
        message = str(excinfo.value)
        assert str(TRACE_SCHEMA_VERSION) in message
        assert str(result.cache_path) in message

    def test_cache_surfaces_npz_layout_mismatch(self, tmp_path, monkeypatch):
        config = TraceGeneratorConfig(**CONFIG)
        cache = TraceCache(tmp_path / "cache")
        result = StudyRunner(config, workers=1, cache=cache).run()
        entry = TraceDataset.from_npz(result.cache_path)
        monkeypatch.setattr(trace_module, "NPZ_SCHEMA_VERSION", 999)
        entry.to_npz(result.cache_path)
        monkeypatch.undo()
        with pytest.raises(TraceSchemaError) as excinfo:
            cache.get(result.cache_key)
        assert str(result.cache_path) in str(excinfo.value)

    def test_corrupt_entry_is_still_a_miss(self, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        cache = TraceCache(tmp_path / "cache")
        result = StudyRunner(config, workers=1, cache=cache).run()
        result.cache_path.write_bytes(b"not a zip at all")
        assert cache.get(result.cache_key) is None


class TestBufferedDraws:
    def test_normals_match_the_block_stream(self):
        draws = BufferedDraws(RandomSource(5, name="machine"), block_size=8)
        reference = RandomSource(5, name="machine").child(
            "normal").generator.standard_normal(20)
        values = [draws.normal(0.0, 2.5) for _ in range(20)]
        np.testing.assert_allclose(values, 2.5 * reference)

    def test_uniforms_match_the_block_stream(self):
        draws = BufferedDraws(RandomSource(5, name="machine"), block_size=8)
        reference = RandomSource(5, name="machine").child(
            "uniform").generator.random(20)
        values = [draws.uniform(1.0, 3.0) for _ in range(20)]
        np.testing.assert_allclose(values, 1.0 + 2.0 * reference)
        assert draws.random() == pytest.approx(
            RandomSource(5, name="machine").child(
                "uniform").generator.random(21)[-1])

    def test_interleaved_draws_are_reproducible(self):
        first = BufferedDraws(RandomSource(9), block_size=4)
        second = BufferedDraws(RandomSource(9), block_size=4)
        pattern = [first.normal(), first.random(), first.normal(),
                   first.uniform(0, 10), first.random()]
        replay = [second.normal(), second.random(), second.normal(),
                  second.uniform(0, 10), second.random()]
        assert pattern == replay

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            BufferedDraws(RandomSource(1), block_size=0)
