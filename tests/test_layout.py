"""Tests for repro.transpiler.layout."""

import pytest

from repro.core.exceptions import TranspilerError
from repro.transpiler.layout import Layout


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical(0) == 0
        assert layout.physical(2) == 2
        assert layout.num_mapped == 3

    def test_from_physical_list(self):
        layout = Layout.from_physical_list([4, 2, 0])
        assert layout.physical(0) == 4
        assert layout.virtual(2) == 1

    def test_double_assignment_rejected(self):
        layout = Layout({0: 1})
        with pytest.raises(TranspilerError):
            layout.assign(0, 2)
        with pytest.raises(TranspilerError):
            layout.assign(1, 1)

    def test_unmapped_virtual_raises(self):
        with pytest.raises(TranspilerError):
            Layout().physical(0)

    def test_unmapped_physical_returns_none(self):
        assert Layout({0: 1}).virtual(0) is None

    def test_swap_physical(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_with_empty_slot(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 5)
        assert layout.physical(0) == 5
        assert layout.virtual(0) is None

    def test_copy_is_independent(self):
        layout = Layout({0: 0})
        clone = layout.copy()
        clone.assign(1, 1)
        assert not layout.has_virtual(1)

    def test_equality_and_dict(self):
        assert Layout({0: 2, 1: 3}) == Layout({1: 3, 0: 2})
        assert Layout({0: 2}).as_dict() == {0: 2}

    def test_bijectivity_invariant(self):
        layout = Layout({0: 5, 1: 3, 2: 7})
        for virtual in layout.virtual_qubits():
            assert layout.virtual(layout.physical(virtual)) == virtual
