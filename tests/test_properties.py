"""Property-based tests (hypothesis) on the core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import pearson_correlation, summarize
from repro.circuits.library import random_circuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.cloud.queues import FairShareQueue
from repro.cloud.job import CircuitSpec, Job
from repro.core.rng import RandomSource, derive_seed
from repro.core.units import format_duration
from repro.devices.topology import CouplingMap, line_topology, ring_topology
from repro.fidelity.statevector import StatevectorSimulator
from repro.transpiler.layout import Layout
from repro.transpiler.passes import (
    BasisTranslator,
    CheckMap,
    Optimize1qGates,
    PropertySet,
    StochasticSwap,
    Unroll3qOrMore,
)

# Strategy: small random circuits described by a seed and size bounds.
circuit_strategy = st.builds(
    lambda qubits, depth, seed: random_circuit(
        qubits, depth, rng=RandomSource(seed), measure=False
    ),
    qubits=st.integers(min_value=1, max_value=5),
    depth=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestCircuitProperties:
    @given(circuit=circuit_strategy)
    @settings(max_examples=40, deadline=None)
    def test_depth_bounded_by_size(self, circuit):
        assert 0 <= circuit.depth() <= circuit.size

    @given(circuit=circuit_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cx_depth_bounded_by_cx_count_and_depth(self, circuit):
        assert circuit.cx_depth <= circuit.cx_count
        assert circuit.cx_depth <= circuit.depth()

    @given(circuit=circuit_strategy)
    @settings(max_examples=30, deadline=None)
    def test_qasm_round_trip_preserves_counts(self, circuit):
        restored = from_qasm(to_qasm(circuit))
        assert restored.gate_counts() == circuit.gate_counts()
        assert restored.depth() == circuit.depth()

    @given(circuit=circuit_strategy, offset=st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_remapping_preserves_structure(self, circuit, offset):
        width = circuit.num_qubits + offset
        mapping = {q: q + offset for q in range(circuit.num_qubits)}
        remapped = circuit.remap_qubits(mapping, num_qubits=width)
        assert remapped.depth() == circuit.depth()
        assert remapped.cx_count == circuit.cx_count


class TestStatevectorProperties:
    @given(circuit=circuit_strategy)
    @settings(max_examples=25, deadline=None)
    def test_norm_preserved(self, circuit):
        state = StatevectorSimulator().run(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)

    @given(circuit=circuit_strategy)
    @settings(max_examples=20, deadline=None)
    def test_basis_translation_preserves_state(self, circuit):
        translated = BasisTranslator().run(
            Unroll3qOrMore().run(circuit, PropertySet()), PropertySet())
        simulator = StatevectorSimulator()
        overlap = abs(np.vdot(simulator.run(circuit), simulator.run(translated)))
        assert overlap == pytest.approx(1.0, abs=1e-7)

    @given(circuit=circuit_strategy)
    @settings(max_examples=20, deadline=None)
    def test_optimize_1q_preserves_state(self, circuit):
        optimised = Optimize1qGates().run(circuit, PropertySet())
        simulator = StatevectorSimulator()
        overlap = abs(np.vdot(simulator.run(circuit), simulator.run(optimised)))
        assert overlap == pytest.approx(1.0, abs=1e-7)
        assert optimised.size <= circuit.size


class TestRoutingProperties:
    @given(
        num_qubits=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
        ring=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_routing_always_yields_mapped_circuit(self, num_qubits, seed, ring):
        topology = ring_topology(num_qubits) if ring else line_topology(num_qubits)
        circuit = random_circuit(num_qubits, 6, rng=RandomSource(seed),
                                 measure=False)
        props = PropertySet({"coupling_map": topology})
        routed = StochasticSwap(trials=2, seed=seed).run(circuit, props)
        check = PropertySet({"coupling_map": topology})
        CheckMap().run(routed, check)
        assert check["is_swap_mapped"] is True
        # Routing only adds SWAPs: every original 2q gate count is preserved.
        original = circuit.gate_counts()
        routed_counts = routed.gate_counts()
        for name, count in original.items():
            if name == "swap":
                assert routed_counts.get(name, 0) >= count
            else:
                assert routed_counts.get(name, 0) == count


class TestLayoutProperties:
    @given(permutation=st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_layout_is_bijective(self, permutation):
        layout = Layout.from_physical_list(permutation)
        for virtual in range(len(permutation)):
            assert layout.virtual(layout.physical(virtual)) == virtual
        assert sorted(layout.physical_qubits()) == sorted(permutation)


class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2 ** 31),
           names=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_deterministic_and_in_range(self, seed, names):
        a = derive_seed(seed, *names)
        b = derive_seed(seed, *names)
        assert a == b
        assert 0 <= a < 2 ** 64

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_reproduces_stream(self, seed):
        a = [RandomSource(seed).random() for _ in range(3)]
        b = [RandomSource(seed).random() for _ in range(3)]
        assert a == b


class TestUnitsAndStatsProperties:
    @given(seconds=st.floats(min_value=0, max_value=1e7,
                             allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_format_duration_always_returns_text(self, seconds):
        text = format_duration(seconds)
        assert isinstance(text, str) and text

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_summary_orderings(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.p25 <= summary.median
        assert summary.median <= summary.p75 <= summary.maximum
        assert summary.count == len(values)

    @given(values=st.lists(st.floats(min_value=-100, max_value=100,
                                     allow_nan=False), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_correlation_bounded(self, values):
        other = [v * 2 + 1 for v in values]
        correlation = pearson_correlation(values, other)
        assert -1.0 - 1e-9 <= correlation <= 1.0 + 1e-9


class TestTopologyProperties:
    @given(num_qubits=st.integers(min_value=2, max_value=12),
           extra_edges=st.integers(min_value=0, max_value=6),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_bisection_bounded_by_edge_count(self, num_qubits, extra_edges, seed):
        rng = RandomSource(seed)
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
        for _ in range(extra_edges):
            a = rng.integers(0, num_qubits)
            b = rng.integers(0, num_qubits)
            if a != b:
                edges.append((min(a, b), max(a, b)))
        cmap = CouplingMap(num_qubits, set(edges))
        bisection = cmap.bisection_bandwidth()
        assert 1 <= bisection <= cmap.num_edges

    @given(num_qubits=st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_distances_satisfy_triangle_inequality_on_lines(self, num_qubits):
        cmap = line_topology(num_qubits)
        for a in range(num_qubits):
            for b in range(num_qubits):
                assert cmap.distance(a, b) == abs(a - b)


class TestFairShareProperties:
    @given(job_plan=st.lists(st.sampled_from(["alice", "bob", "carol"]),
                             min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_pushed_job_is_eventually_popped(self, job_plan):
        queue = FairShareQueue()
        spec = CircuitSpec(name="c", width=2, depth=3, num_gates=5, cx_count=1,
                           cx_depth=1)
        pushed = []
        for index, provider in enumerate(job_plan):
            job = Job(provider=provider, backend_name="m", circuits=[spec],
                      shots=1, submit_time=float(index))
            queue.push(job, float(index))
            pushed.append(job)
        popped = []
        while len(queue):
            job = queue.pop(100.0)
            queue.record_usage(job.provider, 10.0)
            popped.append(job)
        assert {j.job_id for j in popped} == {j.job_id for j in pushed}
