"""Tests for the discrete-event engine and the machine queues."""

import pytest

from repro.cloud.events import EventQueue
from repro.cloud.job import CircuitSpec, Job
from repro.cloud.queues import FairShareQueue, FifoQueue
from repro.core.exceptions import CloudError


def _job(provider: str, submit_time: float = 0.0, batch: int = 1) -> Job:
    spec = CircuitSpec(name="c", width=2, depth=4, num_gates=6, cx_count=2,
                       cx_depth=2)
    return Job(provider=provider, backend_name="ibmq_athens",
               circuits=[spec] * batch, shots=1024, submit_time=submit_time)


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5.0, lambda: order.append("late"))
        queue.schedule(1.0, lambda: order.append("early"))
        queue.run_all()
        assert order == ["early", "late"]
        assert queue.now == 5.0

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run_all()
        assert order == ["first", "second"]

    def test_run_until_stops_at_boundary(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append(1))
        queue.schedule(3.0, lambda: order.append(3))
        executed = queue.run_until(2.0)
        assert executed == 1
        assert order == [1]
        assert queue.now == 2.0

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        order = []
        event = queue.schedule(1.0, lambda: order.append("cancelled"))
        queue.schedule(2.0, lambda: order.append("kept"))
        event.cancel()
        queue.run_all()
        assert order == ["kept"]

    def test_scheduling_in_the_past_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_all()
        with pytest.raises(CloudError):
            queue.schedule(0.5, lambda: None)

    def test_events_scheduled_during_execution(self):
        queue = EventQueue()
        order = []

        def chain():
            order.append("a")
            queue.schedule_after(1.0, lambda: order.append("b"))

        queue.schedule(1.0, chain)
        queue.run_all()
        assert order == ["a", "b"]
        assert queue.now == 2.0

    def test_pending_counter_tracks_lifecycle(self):
        """``pending`` is a live counter: schedule/cancel/pop keep it exact
        without ever walking the store."""
        queue = EventQueue()
        events = [queue.schedule(float(i + 1), lambda: None)
                  for i in range(5)]
        assert queue.pending == 5
        assert len(queue) == 5
        events[2].cancel()
        assert queue.pending == 4
        # Cancelling twice is a no-op, not a double decrement.
        events[2].cancel()
        assert queue.pending == 4
        queue.step()
        assert queue.pending == 3
        queue.run_all()
        assert queue.pending == 0

    def test_cancel_after_pop_leaves_counters_alone(self):
        """A popped event no longer occupies a store slot, so a late
        cancel must not corrupt the live/cancelled counters."""
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.step()
        assert queue.pending == 1
        first.cancel()
        assert queue.pending == 1
        assert queue.run_all() == 1
        assert queue.pending == 0

    @pytest.mark.parametrize("bucket_seconds", [None, 10.0])
    def test_compaction_keeps_cancel_heavy_store_bounded(self,
                                                         bucket_seconds):
        """Cancelled entries are compacted away once they outnumber live
        ones, for both the heap and the calendar store."""
        queue = EventQueue(bucket_seconds=bucket_seconds)
        survivors = []
        for i in range(1000):
            event = queue.schedule(float(i + 1), lambda i=i: survivors
                                   .append(i))
            if i % 10 != 0:
                event.cancel()
        # 900 of 1000 were cancelled; compaction must have dropped (most
        # of) them from the store rather than leaving them as tombstones.
        assert queue.pending == 100
        assert len(queue._store) < 250
        queue.run_all()
        assert survivors == [i for i in range(1000) if i % 10 == 0]

    def test_calendar_and_heap_stores_pop_identically(self):
        """The calendar store replays the exact (time, sequence) total
        order of the heap store, including ties, cancellations and events
        scheduled mid-run far outside the initial horizon."""
        import random

        rng = random.Random(42)
        times = [round(rng.uniform(0.0, 500.0), 3) for _ in range(300)]
        times += [times[7], times[91], times[200]]  # exact ties

        def drive(bucket_seconds):
            queue = EventQueue(bucket_seconds=bucket_seconds)
            order = []
            scheduled = []
            for index, time in enumerate(times):
                def callback(index=index, queue=queue):
                    order.append(index)
                    if index % 50 == 0:
                        # Chain an event well past the initial horizon.
                        queue.schedule_after(750.0 + index,
                                             lambda: order.append(-index))
                scheduled.append(queue.schedule(time, callback))
            for index in range(0, len(scheduled), 9):
                scheduled[index].cancel()
            queue.run_all()
            return order

        assert drive(None) == drive(25.0)


class TestFifoQueue:
    def test_pop_order(self):
        queue = FifoQueue()
        first = _job("open", 0.0)
        second = _job("open", 1.0)
        queue.push(first, 0.0)
        queue.push(second, 1.0)
        assert queue.pop(2.0) is first
        assert queue.pop(2.0) is second

    def test_pop_empty_raises(self):
        with pytest.raises(CloudError):
            FifoQueue().pop(0.0)


class TestFairShareQueue:
    def test_round_robin_between_equal_shares(self):
        queue = FairShareQueue()
        a1, a2 = _job("alice", 0.0), _job("alice", 1.0)
        b1 = _job("bob", 2.0)
        for job in (a1, a2, b1):
            queue.push(job, job.submit_time)
        first = queue.pop(3.0)
        queue.record_usage(first.provider, 100.0)
        second = queue.pop(3.0)
        # After alice consumed time, bob must be served next (or vice versa).
        assert {first.provider, second.provider} == {"alice", "bob"}

    def test_provider_with_larger_share_served_more(self):
        queue = FairShareQueue(shares={"big": 4.0, "small": 1.0})
        for index in range(8):
            queue.push(_job("big", index), index)
            queue.push(_job("small", index), index)
        served = []
        for _ in range(10):
            job = queue.pop(100.0)
            served.append(job.provider)
            queue.record_usage(job.provider, 60.0)
        assert served.count("big") > served.count("small")

    def test_completion_order_not_submission_order(self):
        """The paper's observation: fair share interleaves providers."""
        queue = FairShareQueue()
        early_jobs = [_job("heavy", t) for t in range(3)]
        late_job = _job("light", 10.0)
        for job in early_jobs:
            queue.push(job, job.submit_time)
        queue.record_usage("heavy", 1000.0)   # heavy already consumed a lot
        queue.push(late_job, 10.0)
        assert queue.pop(11.0).provider == "light"

    def test_within_provider_fifo(self):
        queue = FairShareQueue()
        first = _job("alice", 0.0)
        second = _job("alice", 1.0)
        queue.push(second, 1.0)
        queue.push(first, 0.0)
        assert queue.pop(2.0) is first

    def test_usage_must_be_non_negative(self):
        queue = FairShareQueue()
        with pytest.raises(CloudError):
            queue.record_usage("alice", -1.0)

    def test_peek_jobs_lists_everything(self):
        queue = FairShareQueue()
        jobs = [_job("a", 0.0), _job("b", 1.0), _job("a", 2.0)]
        for job in jobs:
            queue.push(job, job.submit_time)
        assert len(queue.peek_jobs()) == 3
        assert len(queue) == 3

    def test_invalid_share_rejected(self):
        with pytest.raises(CloudError):
            FairShareQueue(default_share=0.0)
        queue = FairShareQueue()
        with pytest.raises(CloudError):
            queue.set_share("x", -1.0)
