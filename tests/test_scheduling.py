"""Tests for repro.scheduling (policies, load balancing, batching,
multi-programming)."""

import pytest

from repro.circuits.library import ghz_circuit, qft_circuit
from repro.cloud.job import CircuitSpec, Job
from repro.core.exceptions import ReproError
from repro.devices import build_backend, build_fleet
from repro.scheduling import (
    BatchingPlanner,
    LoadBalancer,
    MachineSelector,
    MultiProgrammer,
    SelectionObjective,
)


def _spec(width=2, name="c"):
    return CircuitSpec(name=name, width=width, depth=8, num_gates=14,
                       cx_count=4, cx_depth=3)


def _job(backend="ibmq_athens", batch=10, width=2):
    return Job(provider="academic-hub", backend_name=backend,
               circuits=[_spec(width)] * batch, shots=1024, submit_time=0.0)


class TestMachineSelector:
    @pytest.fixture(scope="class")
    def candidates(self):
        return [build_backend(name, seed=2) for name in
                ("ibmq_athens", "ibmq_casablanca", "ibmq_toronto")]

    def test_fidelity_objective_ranks_by_success(self, candidates):
        selector = MachineSelector(SelectionObjective.FIDELITY)
        choices = selector.evaluate(ghz_circuit(3), candidates)
        successes = [c.estimated_success for c in choices]
        assert successes == sorted(successes, reverse=True)

    def test_queue_objective_prefers_idle_machine(self, candidates):
        selector = MachineSelector(SelectionObjective.QUEUE)
        waits = {"ibmq_athens": 600.0, "ibmq_casablanca": 5.0,
                 "ibmq_toronto": 90.0}
        best = selector.select(ghz_circuit(3), candidates,
                               expected_wait_minutes=waits)
        assert best.machine == "ibmq_casablanca"

    def test_balanced_objective_trades_off(self, candidates):
        selector = MachineSelector(SelectionObjective.BALANCED,
                                   fidelity_weight=0.5)
        waits = {"ibmq_athens": 2000.0, "ibmq_casablanca": 10.0,
                 "ibmq_toronto": 10.0}
        best = selector.select(ghz_circuit(3), candidates,
                               expected_wait_minutes=waits)
        assert best.machine in ("ibmq_casablanca", "ibmq_toronto")

    def test_cx_metrics_reported(self, candidates):
        selector = MachineSelector()
        choices = selector.evaluate(qft_circuit(4), candidates)
        assert all(choice.cx_total > 0 for choice in choices)
        assert all(0 <= choice.estimated_success <= 1 for choice in choices)

    def test_too_small_machines_excluded(self, candidates):
        selector = MachineSelector()
        choices = selector.evaluate(qft_circuit(6), candidates)
        assert all(choice.machine != "ibmq_athens" for choice in choices)

    def test_no_fitting_machine_rejected(self, candidates):
        selector = MachineSelector()
        with pytest.raises(ReproError):
            selector.evaluate(qft_circuit(40), candidates)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ReproError):
            MachineSelector(fidelity_weight=1.5)


class TestLoadBalancer:
    @pytest.fixture(scope="class")
    def fleet_subset(self):
        return build_fleet(["ibmq_athens", "ibmq_santiago", "ibmq_rome",
                            "ibmq_bogota"], seed=2)

    def test_balancing_reduces_imbalance(self, fleet_subset):
        """Recommendation V-E.4: vendor balancing beats user heuristics."""
        jobs = [_job("ibmq_athens", batch=50) for _ in range(20)]
        balancer = LoadBalancer(fleet_subset)
        balanced = balancer.assign(jobs)
        baseline = LoadBalancer.user_driven_baseline(jobs, fleet_subset)
        assert balanced.imbalance < baseline.imbalance
        assert balanced.max_backlog < baseline.max_backlog

    def test_all_jobs_assigned(self, fleet_subset):
        jobs = [_job(batch=b) for b in (5, 50, 500)]
        result = LoadBalancer(fleet_subset).assign(jobs)
        assert set(result.assignments) == {job.job_id for job in jobs}

    def test_qubit_requirement_respected(self, fleet_subset):
        fleet = dict(fleet_subset)
        fleet["ibmq_toronto"] = build_backend("ibmq_toronto", seed=2)
        jobs = [_job(width=16, batch=5)]
        result = LoadBalancer(fleet).assign(jobs)
        assert result.assignments[jobs[0].job_id] == "ibmq_toronto"

    def test_unplaceable_job_rejected(self, fleet_subset):
        with pytest.raises(ReproError):
            LoadBalancer(fleet_subset).assign([_job(width=50)])

    def test_custom_runtime_estimator_used(self, fleet_subset):
        jobs = [_job(batch=10), _job(batch=10)]
        result = LoadBalancer(fleet_subset).assign(
            jobs, job_runtime_estimator=lambda job, backend: 1000.0)
        assert sum(result.backlog_seconds.values()) == pytest.approx(2000.0)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ReproError):
            LoadBalancer({})


class TestBatchingPlanner:
    def test_batched_plan_reduces_per_circuit_queue(self, athens):
        """Fig. 11 / recommendation V-E.5: batching amortises queue time."""
        planner = BatchingPlanner(athens, expected_queue_minutes=60.0)
        circuits = [_spec(name=f"c{i}") for i in range(300)]
        saving = planner.saving_versus_unbatched(circuits)
        assert saving < 0.05

    def test_batch_limit_respected(self, athens):
        planner = BatchingPlanner(athens)
        circuits = [_spec(name=f"c{i}") for i in range(1000)]
        plan = planner.plan(circuits)
        assert plan.num_jobs == 2
        assert max(len(batch) for batch in plan.batches) <= athens.max_batch_size
        assert plan.num_circuits == 1000

    def test_custom_max_batch(self, athens):
        planner = BatchingPlanner(athens)
        plan = planner.plan([_spec(name=f"c{i}") for i in range(10)], max_batch=3)
        assert plan.num_jobs == 4

    def test_oversized_circuit_rejected(self, athens):
        planner = BatchingPlanner(athens)
        with pytest.raises(ReproError):
            planner.plan([_spec(width=20)])

    def test_empty_input_rejected(self, athens):
        with pytest.raises(ReproError):
            BatchingPlanner(athens).plan([])


class TestMultiProgrammer:
    def test_colocation_improves_utilization(self, manhattan):
        """Recommendation IV-D.3: co-location raises machine utilisation."""
        programmer = MultiProgrammer(manhattan)
        circuits = [_spec(width=5, name=f"c{i}") for i in range(8)]
        gain = programmer.utilization_gain(circuits)
        assert gain > 3.0

    def test_regions_are_disjoint_and_connected(self, manhattan):
        programmer = MultiProgrammer(manhattan)
        circuits = [_spec(width=4, name=f"c{i}") for i in range(6)]
        plan = programmer.plan(circuits)
        used = []
        for name, region in plan.placements:
            assert manhattan.coupling_map.subgraph_is_connected(region)
            used.extend(region)
        assert len(used) == len(set(used))

    def test_oversubscription_leaves_leftovers(self, athens):
        programmer = MultiProgrammer(athens)
        circuits = [_spec(width=3, name=f"c{i}") for i in range(5)]
        plan = programmer.plan(circuits)
        assert plan.circuits_placed >= 1
        assert plan.circuits_placed + len(plan.leftover_circuits) == 5

    def test_empty_input_rejected(self, athens):
        with pytest.raises(ReproError):
            MultiProgrammer(athens).plan([])
