"""Golden byte-equivalence of the batched simulation engine.

The contract of :mod:`repro.cloud.fastsim` is *byte-identical traces*: for
every scenario perturbation and any worker/shard count, a study simulated
through the batched engine produces the same ``.npz`` bytes as the
reference discrete-event loop.  These tests pin that contract at three
levels — the raw engine (terminal job states for any pre-draw block size),
the sharded runner (npz file bytes, worker/shard invariance) and the
scenario layer (every builtin catalog perturbation).
"""

import pytest

from repro.cloud.fastsim import simulate_fleet
from repro.cloud.service import QuantumCloudService
from repro.core.types import JobStatus
from repro.runner import run_study
from repro.scenarios import builtin_scenarios, expand_sweeps
from repro.workloads.generator import (
    JobSynthesizer,
    TraceGeneratorConfig,
    plan_submissions,
)

CONFIG = dict(total_jobs=90, months=3, seed=23)

#: Job fields that define a terminal simulation outcome.
_FIELDS = ("job_id", "status", "queue_enter_time", "start_time",
           "end_time", "pending_ahead")


def _synthesise(config):
    """A fresh, independent job list for one engine run.

    Simulation mutates jobs in place, so each engine must get its own
    copy; synthesis is deterministic, so two passes yield identical jobs.
    """
    fleet = config.build_fleet()
    synthesizer = JobSynthesizer(config, fleet)
    jobs = [synthesizer.synthesise(planned)
            for planned in plan_submissions(config)]
    return fleet, [job for job in jobs if job is not None]


def _event_outcomes(config):
    fleet, jobs = _synthesise(config)
    service = QuantumCloudService(fleet, seed=config.seed,
                                  failure_model=config.build_failure_model())
    for job in sorted(jobs, key=lambda j: (j.submit_time, j.job_id)):
        service.submit(job)
    service.drain()
    return _outcomes(jobs)


def _batched_outcomes(config, block_size):
    fleet, jobs = _synthesise(config)
    simulate_fleet(fleet, jobs, seed=config.seed,
                   failure_model=config.build_failure_model(),
                   block_size=block_size)
    return _outcomes(jobs)


def _outcomes(jobs):
    return sorted(tuple(getattr(job, field) for field in _FIELDS)
                  for job in jobs)


# -- the raw engine ------------------------------------------------------------------


def test_engine_equality_across_block_sizes():
    """Terminal states match the event loop for any pre-draw block size.

    numpy generators are chunking-invariant, so the block size must be a
    pure performance knob — block 1 (draw-at-a-time) through block 1024
    all replay the exact draw sequence of the event loop's BufferedDraws.
    """
    config = TraceGeneratorConfig(**CONFIG)
    reference = _event_outcomes(config)
    statuses = {outcome[1] for outcome in reference}
    assert JobStatus.CANCELLED in statuses, \
        "fixture too small to exercise the cancel path"
    assert JobStatus.ERROR in statuses, \
        "fixture too small to exercise the error path"
    for block_size in (1, 7, 64, 1024):
        assert _batched_outcomes(config, block_size) == reference, \
            f"batched engine diverged at block_size={block_size}"


def test_engine_equality_other_seed_and_scale():
    config = TraceGeneratorConfig(total_jobs=140, months=4, seed=7)
    assert _batched_outcomes(config, 1024) == _event_outcomes(config)


# -- the sharded runner --------------------------------------------------------------


@pytest.fixture(scope="module")
def runner_config():
    return TraceGeneratorConfig(**CONFIG)


def test_run_study_npz_bytes_identical(runner_config, tmp_path):
    """The engine switch yields byte-for-byte identical saved traces."""
    paths = {}
    for engine in ("event", "batched"):
        result = run_study(config=runner_config, workers=1, use_cache=False,
                           engine=engine)
        assert result.engine == engine
        assert result.metadata["engine"] == engine
        assert "simulation" in result.metadata["phase_seconds"]
        paths[engine] = tmp_path / f"{engine}.npz"
        result.trace.save(paths[engine])
    assert paths["batched"].read_bytes() == paths["event"].read_bytes()


def test_worker_and_shard_counts_do_not_change_bytes(runner_config,
                                                     tmp_path):
    """Batched engine at 2 workers / 3 shards == event engine at 1 / 1."""
    reference = run_study(config=runner_config, workers=1, num_shards=1,
                          use_cache=False, engine="event")
    sharded = run_study(config=runner_config, workers=2, num_shards=3,
                        use_cache=False, engine="batched")
    reference_path = tmp_path / "reference.npz"
    sharded_path = tmp_path / "sharded.npz"
    reference.trace.save(reference_path)
    sharded.trace.save(sharded_path)
    assert sharded_path.read_bytes() == reference_path.read_bytes()


def test_unknown_engine_rejected(runner_config):
    from repro.core.exceptions import WorkloadError

    with pytest.raises(WorkloadError):
        run_study(config=runner_config, workers=1, use_cache=False,
                  engine="warp-drive")


# -- every builtin scenario perturbation ---------------------------------------------


def _catalog_variants():
    base = TraceGeneratorConfig(total_jobs=60, months=2, seed=11)
    variants = []
    for scenario in expand_sweeps(list(builtin_scenarios().values())):
        variants.append(pytest.param(scenario.apply_to(base),
                                     id=scenario.name))
    return variants


@pytest.mark.parametrize("config", _catalog_variants())
def test_catalog_scenarios_byte_identical(config):
    """Every catalog perturbation replays identically on both engines.

    Scenario perturbations reshape the fleet, the failure model and the
    demand curve — exactly the knobs whose draw sequences the batched
    engine inlines — so each one is a distinct equivalence fixture.
    """
    assert _batched_outcomes(config, 1024) == _event_outcomes(config)
