"""Tests for repro.devices.backend and repro.devices.catalog."""

import pytest

from repro.core.exceptions import DeviceError
from repro.core.types import MachineGeneration
from repro.devices.backend import DEFAULT_MAX_BATCH_SIZE, DEFAULT_MAX_SHOTS
from repro.devices.catalog import (
    MACHINE_SPECS,
    STUDY_MONTHS,
    build_backend,
    build_fleet,
    fake_large_backend,
    fleet_in_study,
)


class TestBackend:
    def test_job_shape_limits(self, casablanca):
        casablanca.validate_job_shape(batch_size=1, shots=1024)
        casablanca.validate_job_shape(batch_size=DEFAULT_MAX_BATCH_SIZE,
                                      shots=DEFAULT_MAX_SHOTS)
        with pytest.raises(DeviceError):
            casablanca.validate_job_shape(batch_size=0, shots=1024)
        with pytest.raises(DeviceError):
            casablanca.validate_job_shape(batch_size=901, shots=1024)
        with pytest.raises(DeviceError):
            casablanca.validate_job_shape(batch_size=1, shots=8193)

    def test_generation_property(self, casablanca, manhattan):
        assert casablanca.generation is MachineGeneration.FALCON_SMALL
        assert manhattan.generation is MachineGeneration.HUMMINGBIRD

    def test_calibration_changes_with_time(self, casablanca):
        day = 86400.0
        first = casablanca.calibration_at(0.0 + 2 * 3600)
        second = casablanca.calibration_at(5 * day + 2 * 3600)
        assert first.average_cx_error() != pytest.approx(second.average_cx_error())

    def test_online_window(self):
        athens = build_backend("ibmq_athens")
        assert not athens.is_online_in_month(0)
        assert athens.is_online_in_month(20)
        retired = build_backend("ibmqx4")
        assert retired.is_online_in_month(5)
        assert not retired.is_online_in_month(20)


class TestCatalog:
    def test_catalog_size_matches_paper(self):
        """25 hardware machines (1-65 qubits) plus the hosted simulator."""
        hardware = [s for s in MACHINE_SPECS.values() if not s.is_simulator]
        assert len(hardware) >= 25
        qubit_counts = {s.num_qubits for s in hardware}
        assert min(qubit_counts) == 1
        assert max(qubit_counts) == 65

    def test_machines_named_in_the_paper_present(self):
        for name in [
            "ibmq_16_melbourne", "ibmq_athens", "ibmq_ourense", "ibmq_valencia",
            "ibmq_burlington", "ibmq_london", "ibmq_vigo", "ibmqx2",
            "ibmq_armonk", "ibmq_johannesburg", "ibmq_paris", "ibmq_boeblingen",
            "ibmq_poughkeepsie", "ibmq_20_tokyo", "ibmq_toronto", "ibmq_bogota",
            "ibmq_rome", "ibmq_manhattan", "ibmq_casablanca", "ibmq_santiago",
            "ibmq_belem", "ibmq_qasm_simulator", "ibmq_guadalupe", "ibmq_lima",
            "ibmq_quito", "ibmq_rochester", "ibmq_essex", "ibmqx4",
        ]:
            assert name in MACHINE_SPECS, name

    def test_build_backend_matches_spec(self):
        for name in ("ibmqx2", "ibmq_toronto", "ibmq_manhattan"):
            backend = build_backend(name)
            assert backend.num_qubits == MACHINE_SPECS[name].num_qubits
            assert backend.access == MACHINE_SPECS[name].access

    def test_unknown_machine_rejected(self):
        with pytest.raises(DeviceError):
            build_backend("ibmq_atlantis")

    def test_build_fleet_subset(self):
        fleet = build_fleet(["ibmq_rome", "ibmq_bogota"])
        assert sorted(fleet) == ["ibmq_bogota", "ibmq_rome"]

    def test_fleet_in_study_excluding_simulator(self):
        fleet = fleet_in_study(include_simulator=False)
        assert all(not b.is_simulator for b in fleet.values())

    def test_public_machines_have_higher_demand(self, fleet):
        """Fig. 9: public machines carry considerably more demand."""
        public = [float(b.metadata["demand_weight"]) for b in fleet.values()
                  if b.is_public and not b.is_simulator and b.num_qubits == 5]
        privileged = [float(b.metadata["demand_weight"]) for b in fleet.values()
                      if not b.is_public and b.num_qubits == 5]
        assert min(public) > max(privileged)

    def test_every_topology_is_connected(self, fleet):
        for backend in fleet.values():
            assert backend.coupling_map.is_connected_graph(), backend.name

    def test_larger_machines_have_larger_overheads(self, fleet):
        athens = fleet["ibmq_athens"]
        manhattan = fleet["ibmq_manhattan"]
        assert manhattan.base_overhead_seconds > athens.base_overhead_seconds

    def test_study_window_length(self):
        assert STUDY_MONTHS == 28


class TestFakeLargeBackend:
    def test_size_and_connectivity(self):
        backend = fake_large_backend(200)
        assert backend.num_qubits == 200
        assert backend.coupling_map.is_connected_graph()

    def test_sparse_like_heavy_hex(self):
        backend = fake_large_backend(300)
        average_degree = (2.0 * backend.coupling_map.num_edges
                          / backend.coupling_map.num_qubits)
        assert average_degree < 4.0

    def test_minimum_size_rejected(self):
        with pytest.raises(DeviceError):
            fake_large_backend(1)
