"""Tests for the observability layer (repro.telemetry).

Covers the four contracts the instrumentation must keep:

* the disabled tracer is a true no-op on hot loops (one shared null-span,
  no allocation, nothing recorded);
* telemetry on vs off changes **nothing** about study output — trace
  ``.npz`` bytes and config fingerprints are identical (golden);
* the Prometheus exposition renders valid text whose counters never
  decrease across scrapes, and the parser rejects malformed input;
* span trees merged back from pool workers nest correctly (spans sharing
  a thread either nest or are disjoint; worker-side spans are present).
"""

import json
import threading

import pytest

from repro.runner import TraceCache, config_fingerprint, run_study
from repro.telemetry import (
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    get_registry,
    get_tracer,
    parse_prometheus_text,
    render_prometheus,
)
from repro.workloads.generator import TraceGeneratorConfig

CONFIG = dict(total_jobs=120, months=3, seed=23)


@pytest.fixture
def tracer():
    """The process tracer, force-disabled and emptied around each test."""
    tracer = get_tracer()
    tracer.disable()
    tracer.reset()
    yield tracer
    tracer.disable()
    tracer.reset()


# -- disabled path -------------------------------------------------------------------


class TestDisabledPath:
    def test_disabled_span_is_shared_singleton(self, tracer):
        first = tracer.span("synthesis.shard", job_shard=0)
        second = tracer.span("simulation.group", machines=5)
        assert first is NULL_SPAN
        assert second is NULL_SPAN

    def test_disabled_span_records_nothing(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.instant("marker")
        tracer.record_span("external", start=0.0, duration=1.0)
        assert tracer.spans() == []

    def test_timed_measures_even_when_disabled(self, tracer):
        with tracer.timed("study.plan") as timer:
            sum(range(1000))
        assert timer.seconds >= 0.0
        assert tracer.spans() == []  # no span, but the clock still ran

    def test_disabled_registry_histogram_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        histogram = registry.histogram("x_seconds")
        histogram.observe(0.5)  # must not raise, must not register
        assert "x_seconds" not in registry.snapshot()


# -- byte identity (golden) ----------------------------------------------------------


class TestGoldenByteIdentity:
    def test_npz_and_fingerprint_identical_tracing_on_vs_off(
            self, tracer, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)

        result_off = run_study(config=config, workers=1, use_cache=False)
        off_path = tmp_path / "off.npz"
        result_off.trace.save(off_path)

        tracer.enable()
        result_on = run_study(config=config, workers=1, use_cache=False)
        tracer.disable()
        on_path = tmp_path / "on.npz"
        result_on.trace.save(on_path)

        assert off_path.read_bytes() == on_path.read_bytes()
        assert result_off.fingerprint == result_on.fingerprint
        assert result_off.fingerprint == config_fingerprint(config)

    def test_cache_bytes_identical_tracing_on_vs_off(self, tracer, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        key = config_fingerprint(config)

        result = run_study(config=config, workers=1, use_cache=False)
        TraceCache(tmp_path / "off").put(key, result.trace)

        tracer.enable()
        result = run_study(config=config, workers=1, use_cache=False)
        TraceCache(tmp_path / "on").put(key, result.trace)
        tracer.disable()

        off_npz = next((tmp_path / "off").rglob("*.npz"))
        on_npz = next((tmp_path / "on").rglob("*.npz"))
        assert off_npz.read_bytes() == on_npz.read_bytes()


# -- metrics registry ----------------------------------------------------------------


class TestRegistry:
    def test_counter_shared_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("t_total", kind="x")
        b = registry.counter("t_total", kind="x")
        c = registry.counter("t_total", kind="y")
        assert a is b and a is not c
        a.inc(2)
        c.inc(5)
        assert registry.value("t_total", kind="x") == 2
        assert registry.value("t_total", kind="y") == 5

    def test_instance_counters_aggregate_into_family_sum(self):
        registry = MetricsRegistry()
        first = registry.instance_counter("hits_total")
        second = registry.instance_counter("hits_total")
        first.inc(3)
        second.inc(4)
        assert first.value == 3  # per-instance semantics survive
        assert second.value == 4
        assert registry.value("hits_total") == 7

    def test_set_local_moves_family_sum_by_delta(self):
        registry = MetricsRegistry()
        counter = registry.instance_counter("evictions_total")
        counter.inc()
        counter.set_local(counter.value + 1)  # external `+= 1` writer
        assert counter.value == 2
        assert registry.value("evictions_total") == 2

    def test_callback_gauge_drops_out_when_owner_dies(self):
        registry = MetricsRegistry()

        class Owner:
            resident = 42

        owner = Owner()
        registry.callback_gauge("resident_bytes", owner,
                                lambda o: o.resident)
        assert registry.value("resident_bytes") == 42
        del owner
        assert registry.value("resident_bytes") == 0

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        samples = parse_prometheus_text(render_prometheus(registry))
        buckets = samples["lat_seconds_bucket"]
        assert buckets['{le="0.1"}'] == 1
        assert buckets['{le="1"}'] == 2
        assert buckets['{le="+Inf"}'] == 3
        assert samples["lat_seconds_count"][""] == 3

    def test_live_counters_are_instrumented(self):
        """The real process registry carries the migrated families."""
        registry = get_registry()
        config = TraceGeneratorConfig(**CONFIG)
        before = registry.value("repro_sim_jobs_total", engine="batched")
        run_study(config=config, workers=1, use_cache=False)
        after = registry.value("repro_sim_jobs_total", engine="batched")
        assert after >= before + 100  # ~120 planned jobs, some dropped


# -- exposition ----------------------------------------------------------------------


class TestExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", kind="x", help="help a").inc(3)
        registry.gauge("b_depth").set(7)
        text = render_prometheus(registry)
        assert "# TYPE a_total counter" in text
        assert text.endswith("\n")
        samples = parse_prometheus_text(text)
        assert samples["a_total"]['{kind="x"}'] == 3
        assert samples["b_depth"][""] == 7

    @pytest.mark.parametrize("bad", [
        "no_value_line\n",
        'metric{unterminated="x\n',
        "metric not-a-number\n",
        "metric NaN\n",
        "0bad_name 1\n",
    ])
    def test_parser_rejects_malformed_text(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_counters_monotonic_across_scrapes(self):
        registry = get_registry()
        first = parse_prometheus_text(render_prometheus(registry))
        run_study(config=TraceGeneratorConfig(**CONFIG), workers=1,
                  use_cache=False)
        second = parse_prometheus_text(render_prometheus(registry))
        for name, series in first.items():
            if not name.endswith("_total"):
                continue
            for labels, value in series.items():
                assert second[name][labels] >= value, (name, labels)


# -- span trees under worker-pool concurrency ----------------------------------------


def _span_index(spans):
    return {span["id"]: span for span in spans}


class TestSpanTrees:
    @pytest.fixture(scope="class")
    def traced_spans(self):
        """Spans of one two-worker study run on the process tracer."""
        tracer = get_tracer()
        tracer.disable()
        tracer.reset()
        tracer.enable()
        try:
            run_study(config=TraceGeneratorConfig(**CONFIG), workers=2,
                      num_shards=2, use_cache=False)
            spans = tracer.spans()
        finally:
            tracer.disable()
            tracer.reset()
        return spans

    def test_worker_spans_are_merged_back(self, traced_spans):
        names = {span["name"] for span in traced_spans}
        assert {"study.plan", "study.synthesis", "study.simulation",
                "study.merge"} <= names
        assert "pool.synthesis" in names
        assert "pool.simulation" in names
        assert "synthesis.shard" in names
        assert "sim.machine" in names
        assert "pool.queued" in names

    def test_parent_links_resolve_and_do_not_cycle(self, traced_spans):
        by_id = _span_index(traced_spans)
        for span in traced_spans:
            parent = span["parent_id"]
            if parent is None:
                continue
            assert parent in by_id
            assert parent != span["id"]
            # child lies within its parent's interval (small slack for
            # float arithmetic on perf_counter deltas)
            outer = by_id[parent]
            assert span["start"] >= outer["start"] - 1e-6

    def test_same_thread_spans_nest_or_are_disjoint(self, traced_spans):
        eps = 1e-6
        by_thread = {}
        for span in traced_spans:
            if span["name"] == "pool.queued":
                # Synthesized queue-wait intervals, not stack frames:
                # concurrently queued tasks legitimately overlap.
                continue
            by_thread.setdefault((span["pid"], span["tid"]),
                                 []).append(span)
        for spans in by_thread.values():
            spans = sorted(spans, key=lambda s: (s["start"],
                                                 -s["duration"]))
            for i, outer in enumerate(spans):
                outer_end = outer["start"] + outer["duration"]
                for inner in spans[i + 1:]:
                    inner_end = inner["start"] + inner["duration"]
                    nested = (inner["start"] >= outer["start"] - eps
                              and inner_end <= outer_end + eps)
                    disjoint = inner["start"] >= outer_end - eps
                    assert nested or disjoint, (outer["name"],
                                                inner["name"])

    def test_chrome_trace_schema(self, traced_spans):
        tracer = Tracer(enabled=True)
        tracer.ingest(traced_spans)
        document = tracer.chrome_trace()
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert events and len(events) == len(traced_spans)
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["args"]["span_id"], int)
        json.dumps(document)  # must be JSON-serialisable end to end

    def test_ingest_rekeys_ids_without_collisions(self):
        parent = Tracer(enabled=True)
        with parent.span("local"):
            pass
        worker = Tracer(enabled=True)
        with worker.span("pool.task"):
            with worker.span("inner"):
                pass
        parent.ingest(worker.export_spans())
        spans = parent.spans()
        assert len(spans) == 3
        ids = [span["id"] for span in spans]
        assert len(set(ids)) == len(ids)
        by_name = {span["name"]: span for span in spans}
        assert by_name["inner"]["parent_id"] == by_name["pool.task"]["id"]

    def test_spans_record_across_threads_without_crosstalk(self, tracer):
        tracer.enable()
        errors = []

        def work(index):
            try:
                with tracer.span("thread.outer", index=index):
                    with tracer.span("thread.inner", index=index):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        spans = tracer.spans()
        assert len(spans) == 16
        inners = [span for span in spans
                  if span["name"] == "thread.inner"]
        by_id = _span_index(spans)
        for inner in inners:
            outer = by_id[inner["parent_id"]]
            assert outer["args"]["index"] == inner["args"]["index"]


# -- cache-hit phase reporting (satellite f) -----------------------------------------


class TestCacheHitPhases:
    def test_cache_hit_reports_zero_phase_timings(self, tracer, tmp_path):
        config = TraceGeneratorConfig(**CONFIG)
        run_study(config=config, workers=1, cache_dir=tmp_path,
                  use_cache=True)
        tracer.enable()
        result = run_study(config=config, workers=1, cache_dir=tmp_path,
                           use_cache=True)
        tracer.disable()
        assert result.metadata.get("cache_hit") is True
        timings = result.timings
        for phase in ("plan", "synthesis", "simulation", "merge"):
            assert timings[phase] == 0.0
        names = [span["name"] for span in tracer.spans()]
        assert "study.cache-hit" in names
        for phase in ("plan", "synthesis", "simulation", "merge"):
            assert f"study.{phase}" in names
