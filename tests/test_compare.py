"""Tests for comparative scenario analysis (repro.analysis.compare)."""

import numpy as np
import pytest

from repro.analysis.compare import (
    compare_suite,
    compare_traces,
    fidelity_proxy,
    headline_metrics,
)
from repro.core.exceptions import AnalysisError
from repro.scenarios import ScenarioEngine, resolve_scenarios
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=70, months=4, seed=13)


@pytest.fixture(scope="module")
def suite():
    engine = ScenarioEngine(TraceGeneratorConfig(**CONFIG), workers=1)
    names = ("baseline", "demand-surge", "calibration-drift", "policy-swap")
    return engine.run(resolve_scenarios(names), use_cache=False)


@pytest.fixture(scope="module")
def report(suite):
    return compare_suite(suite)


class TestHeadlineMetrics:
    def test_metrics_are_populated(self, suite):
        run = suite.run_for("baseline")
        metrics = headline_metrics(run.trace, run.build_fleet())
        assert metrics.jobs == len(run.trace)
        assert metrics.queue_minutes_median > 0
        assert metrics.queue_minutes_p90 >= metrics.queue_minutes_median
        assert 0 < metrics.utilization_mean <= 1
        assert 0 < metrics.fidelity_median <= 1
        assert 0.5 < metrics.done_fraction <= 1
        total = (metrics.done_fraction + metrics.error_fraction
                 + metrics.cancelled_fraction)
        assert total == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            headline_metrics(TraceDataset(), {})

    def test_fidelity_proxy_shape_and_range(self, suite):
        run = suite.run_for("baseline")
        esp = fidelity_proxy(run.trace, run.build_fleet())
        assert esp.shape == (len(run.trace),)
        finite = esp[~np.isnan(esp)]
        assert finite.size > 0
        assert np.all((finite > 0) & (finite <= 1))

    def test_cancelled_jobs_have_no_fidelity(self, suite):
        run = suite.run_for("baseline")
        esp = fidelity_proxy(run.trace, run.build_fleet())
        start = run.trace.values("start_time")
        assert np.all(np.isnan(esp[np.isnan(start)]))


class TestComparison:
    def test_baseline_is_anchored_and_excluded(self, report):
        assert report.baseline_name == "baseline"
        assert "baseline" not in [c.name for c in report.comparisons]
        assert len(report.comparisons) == 3

    def test_calibration_drift_lowers_fidelity(self, report):
        drift = next(c for c in report.comparisons
                     if c.name == "calibration-drift")
        assert drift.deltas["fidelity_median"].delta < 0
        # Drift does not touch demand: the job count is unchanged.
        assert drift.deltas["jobs"].delta == 0

    def test_surge_adds_jobs(self, report):
        surge = next(c for c in report.comparisons
                     if c.name == "demand-surge")
        assert surge.deltas["jobs"].delta > 0

    def test_as_dict_is_json_shaped(self, report):
        import json

        payload = report.as_dict()
        text = json.dumps(payload)
        assert "baseline_metrics" in payload
        assert json.loads(text)["baseline"] == "baseline"

    def test_markdown_table_lists_every_scenario(self, report):
        markdown = report.render_markdown()
        lines = markdown.splitlines()
        assert lines[0].startswith("| scenario |")
        for name in ("baseline", "demand-surge", "calibration-drift",
                     "policy-swap"):
            assert any(line.startswith(f"| {name} |") for line in lines)

    def test_compare_traces_requires_the_baseline(self, suite):
        run = suite.run_for("baseline")
        with pytest.raises(AnalysisError):
            compare_traces("missing",
                           {"baseline": (run.trace, run.build_fleet())})

    def test_compare_suite_falls_back_to_first_run(self, suite):
        trimmed = type(suite)(runs=[suite.run_for("demand-surge"),
                                    suite.run_for("policy-swap")])
        report = compare_suite(trimmed)
        assert report.baseline_name == "demand-surge"
