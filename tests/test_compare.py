"""Tests for comparative scenario analysis (repro.analysis.compare)."""

import numpy as np
import pytest

from repro.analysis.compare import (
    _format_value,
    aggregate_replicates,
    compare_suite,
    compare_traces,
    fidelity_proxy,
    headline_metrics,
    replicate_interval,
)
from repro.core.exceptions import AnalysisError
from repro.scenarios import (
    ScenarioEngine,
    replicate_scenarios,
    resolve_scenarios,
)
from repro.workloads.generator import TraceGeneratorConfig
from repro.workloads.trace import TraceDataset

CONFIG = dict(total_jobs=70, months=4, seed=13)


@pytest.fixture(scope="module")
def suite():
    engine = ScenarioEngine(TraceGeneratorConfig(**CONFIG), workers=1)
    names = ("baseline", "demand-surge", "calibration-drift", "policy-swap")
    return engine.run(resolve_scenarios(names), use_cache=False)


@pytest.fixture(scope="module")
def report(suite):
    return compare_suite(suite)


class TestHeadlineMetrics:
    def test_metrics_are_populated(self, suite):
        run = suite.run_for("baseline")
        metrics = headline_metrics(run.trace, run.build_fleet())
        assert metrics.jobs == len(run.trace)
        assert metrics.queue_minutes_median > 0
        assert metrics.queue_minutes_p90 >= metrics.queue_minutes_median
        assert 0 < metrics.utilization_mean <= 1
        assert 0 < metrics.fidelity_median <= 1
        assert 0.5 < metrics.done_fraction <= 1
        total = (metrics.done_fraction + metrics.error_fraction
                 + metrics.cancelled_fraction)
        assert total == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            headline_metrics(TraceDataset(), {})

    def test_fidelity_proxy_shape_and_range(self, suite):
        run = suite.run_for("baseline")
        esp = fidelity_proxy(run.trace, run.build_fleet())
        assert esp.shape == (len(run.trace),)
        finite = esp[~np.isnan(esp)]
        assert finite.size > 0
        assert np.all((finite > 0) & (finite <= 1))

    def test_cancelled_jobs_have_no_fidelity(self, suite):
        run = suite.run_for("baseline")
        esp = fidelity_proxy(run.trace, run.build_fleet())
        start = run.trace.values("start_time")
        assert np.all(np.isnan(esp[np.isnan(start)]))


class TestComparison:
    def test_baseline_is_anchored_and_excluded(self, report):
        assert report.baseline_name == "baseline"
        assert "baseline" not in [c.name for c in report.comparisons]
        assert len(report.comparisons) == 3

    def test_calibration_drift_lowers_fidelity(self, report):
        drift = next(c for c in report.comparisons
                     if c.name == "calibration-drift")
        assert drift.deltas["fidelity_median"].delta < 0
        # Drift does not touch demand: the job count is unchanged.
        assert drift.deltas["jobs"].delta == 0

    def test_surge_adds_jobs(self, report):
        surge = next(c for c in report.comparisons
                     if c.name == "demand-surge")
        assert surge.deltas["jobs"].delta > 0

    def test_as_dict_is_json_shaped(self, report):
        import json

        payload = report.as_dict()
        text = json.dumps(payload)
        assert "baseline_metrics" in payload
        assert json.loads(text)["baseline"] == "baseline"

    def test_markdown_table_lists_every_scenario(self, report):
        markdown = report.render_markdown()
        lines = markdown.splitlines()
        assert lines[0].startswith("| scenario |")
        for name in ("baseline", "demand-surge", "calibration-drift",
                     "policy-swap"):
            assert any(line.startswith(f"| {name} |") for line in lines)

    def test_compare_traces_requires_the_baseline(self, suite):
        run = suite.run_for("baseline")
        with pytest.raises(AnalysisError):
            compare_traces("missing",
                           {"baseline": (run.trace, run.build_fleet())})

    def test_compare_suite_falls_back_to_first_run(self, suite):
        trimmed = type(suite)(runs=[suite.run_for("demand-surge"),
                                    suite.run_for("policy-swap")])
        report = compare_suite(trimmed)
        assert report.baseline_name == "demand-surge"


class TestValueFormatting:
    def test_nan_renders_as_na(self):
        assert _format_value(float("nan")) == "n/a"

    def test_non_finite_values_do_not_overflow(self):
        # Regression: int(float("inf")) raised OverflowError and crashed
        # the markdown rendering of any report with a non-finite metric.
        assert _format_value(float("inf")) == "inf"
        assert _format_value(float("-inf")) == "-inf"

    def test_ordinary_values_unchanged(self):
        assert _format_value(42.0) == "42"
        assert _format_value(0.12345) == "0.123"
        assert _format_value(123.7) == "124"


class TestReplicateAggregation:
    def test_interval_math(self):
        interval = replicate_interval([1.0, 2.0, 3.0])
        assert interval.n == 3
        assert interval.mean == pytest.approx(2.0)
        # t(df=2, 95%) * std(ddof=1) / sqrt(3) = 4.303 * 1 / 1.7320...
        assert interval.half_width == pytest.approx(2.484, abs=1e-3)
        assert interval.low == pytest.approx(2.0 - 2.484, abs=1e-3)

    def test_interval_degenerate_sizes(self):
        lone = replicate_interval([5.0])
        assert lone.n == 1 and lone.mean == 5.0
        assert lone.half_width != lone.half_width  # NaN: no variance info
        empty = replicate_interval([float("nan")])
        assert empty.n == 0

    def test_aggregate_replicates_means_every_metric(self, suite):
        run = suite.run_for("baseline")
        metrics = headline_metrics(run.trace, run.build_fleet())
        mean_metrics, intervals = aggregate_replicates([metrics, metrics])
        assert mean_metrics.queue_minutes_median == \
            pytest.approx(metrics.queue_minutes_median)
        assert intervals["queue_minutes_median"].n == 2
        assert intervals["queue_minutes_median"].half_width == \
            pytest.approx(0.0)

    def test_replicated_suite_collapses_to_groups_with_ci(self):
        engine = ScenarioEngine(TraceGeneratorConfig(**CONFIG), workers=1)
        scenarios = replicate_scenarios(
            resolve_scenarios(("baseline", "demand-surge")), 2,
            base_seed=CONFIG["seed"])
        replicated = engine.run(scenarios, use_cache=False)
        assert len(replicated) == 4  # two scenarios x two seed replicates
        report = compare_suite(replicated)
        # Groups collapse: one baseline anchor plus one comparison row.
        assert report.baseline_name == "baseline"
        assert report.baseline_replicates == 2
        assert [c.name for c in report.comparisons] == ["demand-surge"]
        surge = report.comparisons[0]
        assert surge.replicates == 2
        assert surge.intervals["jobs"].n == 2
        payload = surge.as_dict()
        assert payload["replicates"] == 2
        assert "half_width" in payload["intervals"]["jobs"]
        markdown = report.render_markdown()
        assert "±" in markdown
        assert "#r1" not in markdown  # replicates aggregate, not listed
