"""Tests for repro.circuits.circuit."""

import pytest

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.exceptions import CircuitError


class TestConstruction:
    def test_default_clbits_match_qubits(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 3

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_out_of_range_clbit_rejected(self):
        circuit = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            circuit.measure(0, 1)

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_chaining(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert len(circuit) == 2

    def test_measure_requires_clbit(self):
        with pytest.raises(CircuitError):
            Instruction(Gate("measure"), (0,))


class TestMetrics:
    def test_bell_depth(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuit.depth() == 2
        assert circuit.cx_depth == 1
        assert circuit.cx_count == 1

    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        assert circuit.depth() == 1

    def test_barrier_does_not_count_in_depth_or_size(self):
        circuit = QuantumCircuit(2).h(0).barrier().h(0)
        assert circuit.depth() == 2
        assert circuit.size == 2

    def test_measure_counts_in_depth(self):
        circuit = QuantumCircuit(1).h(0).measure(0, 0)
        assert circuit.depth() == 2
        assert circuit.count_measurements() == 1

    def test_gate_counts(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1).measure_all()
        counts = circuit.gate_counts()
        assert counts["h"] == 2
        assert counts["cx"] == 1
        assert counts["measure"] == 2
        assert circuit.num_gates == 3  # measurements excluded

    def test_cx_depth_counts_only_two_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).h(0).cx(0, 1).h(1).cx(0, 1)
        assert circuit.cx_depth == 2

    def test_num_active_qubits(self):
        circuit = QuantumCircuit(5).h(0).cx(0, 2)
        assert circuit.num_active_qubits == 2
        assert circuit.width == 5

    def test_interacting_pairs(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        pairs = circuit.interacting_pairs()
        assert pairs[(0, 1)] == 2
        assert pairs[(1, 2)] == 1

    def test_summary_keys(self):
        summary = QuantumCircuit(2).h(0).cx(0, 1).measure_all().summary()
        assert summary["width"] == 2
        assert summary["cx_count"] == 1
        assert summary["measurements"] == 2


class TestTransformations:
    def test_copy_is_independent(self):
        original = QuantumCircuit(2).h(0)
        duplicate = original.copy()
        duplicate.x(1)
        assert len(original) == 1
        assert len(duplicate) == 2

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        remapped = circuit.remap_qubits({0: 3, 1: 1}, num_qubits=4)
        assert remapped.num_qubits == 4
        assert remapped.instructions[0].qubits == (3, 1)

    def test_compose_offsets_qubits(self):
        inner = QuantumCircuit(2).cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubit_offset=2)
        assert outer.instructions[0].qubits == (2, 3)

    def test_compose_overflow_rejected(self):
        inner = QuantumCircuit(3)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubit_offset=1)

    def test_without_measurements(self):
        circuit = QuantumCircuit(2).h(0).measure_all()
        stripped = circuit.without_measurements()
        assert stripped.count_measurements() == 0
        assert stripped.num_gates == 1

    def test_measure_all_grows_clbits(self):
        circuit = QuantumCircuit(3, 1)
        circuit.measure_all()
        assert circuit.num_clbits == 3
        assert circuit.count_measurements() == 3

    def test_equality(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        c = QuantumCircuit(2).h(1).cx(0, 1)
        assert a == b
        assert a != c
