"""Tests for repro.circuits.gates."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    GATE_SPECS,
    Gate,
    IBM_BASIS_GATES,
    NON_UNITARY_OPERATIONS,
    TWO_QUBIT_GATES,
    gate_matrix,
    is_basis_gate,
)
from repro.core.exceptions import CircuitError


class TestGateSpecs:
    def test_basis_gates_present(self):
        for name in IBM_BASIS_GATES:
            assert name in GATE_SPECS

    def test_two_qubit_set(self):
        assert "cx" in TWO_QUBIT_GATES
        assert "swap" in TWO_QUBIT_GATES
        assert "h" not in TWO_QUBIT_GATES
        assert "measure" not in TWO_QUBIT_GATES

    def test_is_basis_gate(self):
        assert is_basis_gate("cx")
        assert is_basis_gate("measure")
        assert not is_basis_gate("h")


class TestGateConstruction:
    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            Gate("frobnicate")

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rz")
        with pytest.raises(CircuitError):
            Gate("x", (0.5,))

    def test_parameterised_gate(self):
        gate = Gate("rz", (math.pi / 3,))
        assert gate.num_qubits == 1
        assert gate.params == (math.pi / 3,)

    def test_inverse_of_self_inverse(self):
        assert Gate("x").inverse() == Gate("x")
        assert Gate("cx").inverse() == Gate("cx")

    def test_inverse_of_rotation_negates_angle(self):
        inverse = Gate("rz", (0.7,)).inverse()
        assert inverse.params == (-0.7,)

    def test_inverse_of_s_is_sdg(self):
        assert Gate("s").inverse() == Gate("sdg")
        assert Gate("tdg").inverse() == Gate("t")


def _is_unitary(matrix: np.ndarray) -> bool:
    identity = np.eye(matrix.shape[0])
    return np.allclose(matrix @ matrix.conj().T, identity, atol=1e-10)


class TestGateMatrices:
    @pytest.mark.parametrize("name", [
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "cx", "cz", "swap", "iswap", "ccx", "cswap",
    ])
    def test_fixed_gates_are_unitary(self, name):
        assert _is_unitary(gate_matrix(Gate(name)))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p", "cp", "crz", "rzz"])
    def test_parameterised_gates_are_unitary(self, name):
        assert _is_unitary(gate_matrix(Gate(name, (0.37,))))

    def test_u_gate_unitary(self):
        assert _is_unitary(gate_matrix(Gate("u", (0.3, 0.7, 1.1))))

    def test_matrix_dimensions_match_qubit_count(self):
        for name in ("x", "cx", "ccx"):
            gate = Gate(name)
            matrix = gate_matrix(gate)
            assert matrix.shape == (2 ** gate.num_qubits,) * 2

    def test_non_unitary_operations_rejected(self):
        for name in NON_UNITARY_OPERATIONS:
            if name == "barrier":
                continue
            with pytest.raises(CircuitError):
                gate_matrix(Gate(name))

    def test_hadamard_matrix_values(self):
        matrix = gate_matrix(Gate("h"))
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(matrix, expected)

    def test_cx_flips_target_when_control_set(self):
        matrix = gate_matrix(Gate("cx"))
        # Basis ordering is |control target>: |10> (index 2) -> |11> (index 3).
        state = np.zeros(4)
        state[2] = 1.0
        result = matrix @ state
        assert result[3] == pytest.approx(1.0)

    def test_sx_squares_to_x(self):
        sx = gate_matrix(Gate("sx"))
        x = gate_matrix(Gate("x"))
        assert np.allclose(sx @ sx, x)

    def test_rz_is_diagonal(self):
        matrix = gate_matrix(Gate("rz", (1.3,)))
        assert np.allclose(matrix, np.diag(np.diag(matrix)))
